package multiclient

import (
	"prefetch/internal/cache"
	"prefetch/internal/netsim"
	"prefetch/internal/schedsrv"
)

// request is one retrieval submitted to the shared server, demand or
// speculative, tagged with the client round that issued it so stale
// prefetch completions can be recognised. It rides through the scheduling
// subsystem as the opaque Tag of a schedsrv.Request.
type request struct {
	client   *client
	page     int
	duration float64 // origin service time (before any server-cache hit)
	demand   bool
	round    int
}

// server is the shared bottleneck every client contends for. Since PR 2 it
// owns only the storage side — the optional shared server-side cache that
// shortens the service of pages it holds — and delegates every queueing,
// ordering, shaping and admission decision to a schedsrv.Scheduler, whose
// discipline is chosen by Config.Sched. The seed behaviour (one FIFO queue
// over `concurrency` slots, demand and prefetch traffic indistinguishable)
// is schedsrv.KindFIFO and replays the seed's timelines bit for bit.
type server struct {
	sched     *schedsrv.Scheduler
	hitFactor float64
	cache     *cache.Cache // nil ⇒ no shared cache

	served    int64
	cacheHits int64
}

func newServer(clock *netsim.Clock, cfg Config) (*server, error) {
	scfg := cfg.Sched
	scfg.Concurrency = cfg.ServerConcurrency
	sched, err := schedsrv.New(clock, scfg)
	if err != nil {
		return nil, err
	}
	s := &server{
		sched:     sched,
		hitFactor: cfg.ServerHitFactor,
	}
	if cfg.ServerCacheSlots > 0 {
		c, err := cache.New(cfg.ServerCacheSlots)
		if err != nil {
			return nil, err
		}
		s.cache = c
	}
	sched.ServiceTime = s.serviceTime
	sched.Done = s.done
	return s, nil
}

// enqueue submits a request to the scheduling subsystem. It reports false
// when admission control dropped a speculative request: the transfer will
// never happen and no completion callback will fire.
func (s *server) enqueue(r request) bool {
	return s.sched.Submit(schedsrv.Request{
		Client:  r.client.id,
		Page:    r.page,
		Service: r.duration,
		Demand:  r.demand,
		Tag:     r,
	})
}

// promote tells the scheduler the demand for a page arrived while its
// speculative transfer is still outstanding, so disciplines that separate
// the classes stop treating it as deferrable speculation.
func (s *server) promote(clientID, page int) bool {
	return s.sched.Promote(clientID, page)
}

// snapshot feeds the scheduler's congestion state back to adaptive
// clients. Reading it never mutates the scheduler.
func (s *server) snapshot(now float64) schedsrv.Feedback {
	return s.sched.Snapshot(now)
}

// serviceTime is the scheduler's service-start hook: a server-cache hit
// means the page is already at the server, so only the hitFactor fraction
// of the origin time is spent. Preemption restarts re-resolve the cache
// (the second attempt's timing is real) but count as neither a new
// request nor a new hit — served and cacheHits count logical requests.
func (s *server) serviceTime(r *schedsrv.Request) float64 {
	first := r.Attempt() == 1
	if first {
		s.served++
	}
	service := r.Service
	if s.cache != nil && s.cache.Contains(r.Page) {
		s.cache.RecordAccess(r.Page)
		service *= s.hitFactor
		if first {
			s.cacheHits++
		}
	}
	return service
}

// done is the scheduler's completion callback.
func (s *server) done(r *schedsrv.Request, service, waited float64) {
	req := r.Tag.(request)
	if s.cache != nil {
		insertLRU(s.cache, req.page, req.duration)
	}
	req.client.onTransferDone(req, waited)
}

// insertLRU caches an item, evicting the least recently used entry when the
// cache is full. A no-op if the item is already cached. Eviction and insert
// cannot fail on a well-formed cache, so errors are simulator bugs.
func insertLRU(c *cache.Cache, id int, retrieval float64) {
	if c.Contains(id) {
		return
	}
	if c.Free() == 0 {
		if victim, ok := c.Victim(cache.LRU{}); ok {
			if err := c.Evict(victim); err != nil {
				panic(err)
			}
		}
	}
	if err := c.Insert(id, retrieval); err != nil {
		panic(err)
	}
}
