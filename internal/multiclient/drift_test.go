package multiclient

import (
	"errors"
	"math"
	"testing"

	"prefetch/internal/netsim"
	"prefetch/internal/predict"
	"prefetch/internal/rng"
	"prefetch/internal/webgraph"
)

// driftTestConfig is testConfig with a non-stationary workload: the hot
// set re-draws every 20 rounds.
func driftTestConfig() Config {
	cfg := testConfig()
	cfg.DriftEvery = 20
	return cfg
}

func TestDriftValidation(t *testing.T) {
	cfg := testConfig()
	cfg.DriftEvery = -1
	if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative drift cadence: err = %v, want ErrBadConfig", err)
	}
	// Regression for the warm-cadence guard: a NaN MeanViewing slips past
	// ordered comparisons and would degenerate the warm cadence
	// (warmEvery = MeanViewing), so validation must reject it.
	cfg = testConfig()
	cfg.MeanViewing = math.NaN()
	if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("NaN mean viewing: err = %v, want ErrBadConfig", err)
	}
	cfg = testConfig()
	cfg.ServerCacheSlots = 10
	cfg.ServerHitFactor = math.NaN()
	if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("NaN hit factor: err = %v, want ErrBadConfig", err)
	}
}

// TestDriftReplayDeterminism: the drifting workload replays bit for bit
// under both the oracle and the drift-built decay predictor — drift
// draws are pure functions of (seed, client).
func TestDriftReplayDeterminism(t *testing.T) {
	for _, pc := range []predict.Config{
		{Kind: predict.KindOracle},
		{Kind: predict.KindDecay, HalfLife: 40},
		{Kind: predict.KindMixture},
		{Kind: predict.KindPPMEscape},
	} {
		t.Run(string(pc.Kind), func(t *testing.T) {
			cfg := driftTestConfig()
			cfg.Predict = pc
			a, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if a.Access.Mean() != b.Access.Mean() || a.Elapsed != b.Elapsed ||
				a.ServerBusy != b.ServerBusy || a.L1Error.Mean() != b.L1Error.Mean() ||
				a.PrefetchCompleted != b.PrefetchCompleted {
				t.Errorf("drift replay diverged: %s vs %s", summary(a), summary(b))
			}
			for i := range a.PerClient {
				pa, pb := a.PerClient[i], b.PerClient[i]
				if pa.Access.Mean() != pb.Access.Mean() || pa.L1Error.Mean() != pb.L1Error.Mean() {
					t.Errorf("client %d drift replay diverged", i)
				}
			}
		})
	}
}

// TestDriftWorkloadsStableAcrossN: drift draws come from derived
// per-label streams, so client i's drifting workload is identical no
// matter how many other clients run beside it.
func TestDriftWorkloadsStableAcrossN(t *testing.T) {
	cfg := driftTestConfig()
	cfg.DisablePrefetch = true
	cfg.Clients = 2
	small, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Clients = 5
	big, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range small.PerClient {
		if small.PerClient[i].DemandFetches != big.PerClient[i].DemandFetches {
			t.Errorf("client %d demand fetches changed with N under drift: %d vs %d",
				i, small.PerClient[i].DemandFetches, big.PerClient[i].DemandFetches)
		}
	}
}

// TestDriftChangesWorkload: enabling drift actually changes the browsing
// workload (the hot set moves), and the oracle still finishes every
// round — the drifting scenario is wired end to end.
func TestDriftChangesWorkload(t *testing.T) {
	stat, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	drift, err := Run(driftTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if drift.Access.N() != stat.Access.N() {
		t.Errorf("drift run finished %d rounds, stationary %d", drift.Access.N(), stat.Access.N())
	}
	if drift.Access.Mean() == stat.Access.Mean() && drift.Elapsed == stat.Elapsed {
		t.Error("drift run is bit-identical to the stationary run — the hot set never moved")
	}
}

// TestDriftRaisesLearnedError: a drifting hot set must cost a plain
// learned predictor prediction accuracy relative to the identical
// stationary workload, while the oracle (which reads the current phase)
// keeps reporting zero L1 error.
func TestDriftRaisesLearnedError(t *testing.T) {
	cfg := testConfig()
	cfg.Rounds = 160
	cfg.DriftEvery = 0
	cfg.Predict = predict.Config{Kind: predict.KindDepGraph}
	stat, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DriftEvery = 25
	drift, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("depgraph L1: stationary %.3f, drifting %.3f", stat.L1Error.Mean(), drift.L1Error.Mean())
	if drift.L1Error.Mean() <= stat.L1Error.Mean() {
		t.Errorf("drift did not raise depgraph L1 error: %.3f vs %.3f",
			drift.L1Error.Mean(), stat.L1Error.Mean())
	}
	cfg.Predict = predict.Config{Kind: predict.KindOracle}
	oracle, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if oracle.L1Error.Max() != 0 {
		t.Errorf("oracle L1 max = %v under drift, want 0 (oracle must stay exact across phases)",
			oracle.L1Error.Max())
	}
}

// TestWarmCadenceRespected: the warmer fires at most once per
// MeanViewing of simulated time, no matter how often round starts poke
// it — the regression guard for a degenerate warm-on-every-event cadence.
func TestWarmCadenceRespected(t *testing.T) {
	cfg := testConfig()
	cfg.ServerCacheSlots = 8
	cfg.Predict = predict.Config{Kind: predict.KindShared}
	cfg.WarmServerCache = true
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	var clock netsim.Clock
	srv, err := newServer(&clock, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	site, err := webgraph.Generate(rng.Derive(cfg.Seed, "site"), cfg.Site)
	if err != nil {
		t.Fatal(err)
	}
	agg := predict.NewAggregate()
	srv.enableWarming(cfg, agg, site)
	for i := 0; i < 50; i++ {
		agg.ObserveClient(0, i%10)
	}
	srv.maybeWarm(0)
	if srv.warmInserted == 0 {
		t.Fatal("first warm pass admitted nothing")
	}
	if srv.warmedAt != 0 {
		t.Fatalf("warmedAt = %v after pass at t=0", srv.warmedAt)
	}
	// Pokes inside the cadence window must not re-warm.
	for _, now := range []float64{0.1, cfg.MeanViewing / 2, cfg.MeanViewing - 1e-9} {
		srv.maybeWarm(now)
		if srv.warmedAt != 0 {
			t.Fatalf("warm pass re-fired at t=%v inside the %v cadence", now, cfg.MeanViewing)
		}
	}
	srv.maybeWarm(cfg.MeanViewing)
	if srv.warmedAt != cfg.MeanViewing {
		t.Fatalf("warm pass did not fire at the cadence boundary (warmedAt %v)", srv.warmedAt)
	}
}

// TestWarmRejectsUnvalidatedCadence: a config path handing the warmer a
// degenerate MeanViewing without validation is a simulator bug and must
// panic rather than silently warm on every event.
func TestWarmRejectsUnvalidatedCadence(t *testing.T) {
	cfg := testConfig()
	cfg.ServerCacheSlots = 8
	cfg.Predict = predict.Config{Kind: predict.KindShared}
	cfg.WarmServerCache = true
	var clock netsim.Clock
	srv, err := newServer(&clock, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	site, err := webgraph.Generate(rng.Derive(cfg.Seed, "site"), cfg.Site)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MeanViewing = 0
	defer func() {
		if recover() == nil {
			t.Error("enableWarming accepted a zero warm cadence")
		}
	}()
	srv.enableWarming(cfg, predict.NewAggregate(), site)
}

// TestMarkParetoDuplicates: cells with identical (demand latency,
// spec/s) are marked together — both dominated or both on the frontier —
// and the marking does not depend on slice order.
func TestMarkParetoDuplicates(t *testing.T) {
	mk := func(demand, spec float64) PredictorControllerPoint {
		var p PredictorControllerPoint
		p.DemandAccess.Add(demand)
		p.SpecThroughput.Add(spec)
		return p
	}
	// Dominated duplicates: (3,7) twice, both strictly beaten by (2,9).
	group := []PredictorControllerPoint{mk(3, 7), mk(2, 9), mk(3, 7)}
	markPareto(group)
	if group[0].Pareto || group[2].Pareto || !group[1].Pareto {
		t.Errorf("dominated duplicates marked inconsistently: %v %v %v",
			group[0].Pareto, group[1].Pareto, group[2].Pareto)
	}
	// Frontier duplicates: (2,9) twice, nothing dominates them.
	group = []PredictorControllerPoint{mk(2, 9), mk(3, 7), mk(2, 9)}
	markPareto(group)
	if !group[0].Pareto || !group[2].Pareto {
		t.Errorf("frontier duplicates marked inconsistently: %v vs %v",
			group[0].Pareto, group[2].Pareto)
	}
	// Order independence: every rotation of the group yields the same
	// flags for the same (demand, spec) values.
	base := []PredictorControllerPoint{mk(1, 5), mk(2, 9), mk(3, 7), mk(2, 9), mk(1.5, 6)}
	markPareto(base)
	want := map[[2]float64]bool{}
	for _, p := range base {
		want[[2]float64{p.DemandAccess.Mean(), p.SpecThroughput.Mean()}] = p.Pareto
	}
	for rot := 1; rot < len(base); rot++ {
		group := make([]PredictorControllerPoint, 0, len(base))
		for i := range base {
			p := base[(i+rot)%len(base)]
			p.Pareto = false
			group = append(group, p)
		}
		markPareto(group)
		for i, p := range group {
			key := [2]float64{p.DemandAccess.Mean(), p.SpecThroughput.Mean()}
			if p.Pareto != want[key] {
				t.Errorf("rotation %d point %d (%v): Pareto = %v, want %v", rot, i, key, p.Pareto, want[key])
			}
		}
	}
}

// TestDriftSweepDeterministic: the predictor sweep over a drifting
// workload is deterministic across worker counts — the GOMAXPROCS gate
// for the new scenario class.
func TestDriftSweepDeterministic(t *testing.T) {
	cfg := driftTestConfig()
	cfg.Rounds = 40
	kinds := []predict.Kind{predict.KindOracle, predict.KindDepGraph, predict.KindDecay}
	a, err := SweepPredictors(cfg, kinds, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SweepPredictors(cfg, kinds, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Access.Mean() != b[i].Access.Mean() || a[i].L1Error.Mean() != b[i].L1Error.Mean() {
			t.Errorf("drift sweep point %d differs across worker counts", i)
		}
	}
}

// BenchmarkMultiClientRoundDrift is the end-to-end hot path of the
// non-stationary scenario: drifting surfers planned over the decayed-
// count predictor. Tracked by the benchmark-regression gate
// (cmd/benchjson).
func BenchmarkMultiClientRoundDrift(b *testing.B) {
	cfg := testConfig()
	cfg.Clients = 8
	cfg.Rounds = 60
	cfg.DriftEvery = 15
	cfg.Predict = predict.Config{Kind: predict.KindDecay, HalfLife: 120}
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Access.N() != int64(cfg.Clients*cfg.Rounds) {
			b.Fatalf("short run: %d rounds", res.Access.N())
		}
	}
}
