package multiclient

import (
	"errors"
	"reflect"
	"testing"

	"prefetch/internal/adaptive"
	"prefetch/internal/predict"
	"prefetch/internal/schedsrv"
)

func sweepTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Clients = 3
	cfg.Rounds = 12
	cfg.Seed = 11
	return cfg
}

// TestSweepGenericMatchesLegacyClients: the generic engine with a
// ClientsAxis reproduces SweepClients exactly — same accumulators, same
// per-rep fold order, same seeds.
func TestSweepGenericMatchesLegacyClients(t *testing.T) {
	cfg := sweepTestConfig()
	ns := []int{2, 4}
	legacy, err := SweepClients(cfg, ns, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	axis, err := ClientsAxis(ns)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := Sweep(cfg, 2, 2, true, axis)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(legacy) {
		t.Fatalf("generic sweep: %d points, legacy %d", len(pts), len(legacy))
	}
	for i := range pts {
		if got, want := pts[i].Labels, []string{[]string{"2", "4"}[i]}; !reflect.DeepEqual(got, want) {
			t.Errorf("point %d labels = %v, want %v", i, got, want)
		}
		if pts[i].Clients != legacy[i].Clients {
			t.Errorf("point %d clients = %d, want %d", i, pts[i].Clients, legacy[i].Clients)
		}
		if pts[i].Access != legacy[i].Access {
			t.Errorf("point %d Access differs from legacy", i)
		}
		if pts[i].DemandAccess != legacy[i].DemandAccess ||
			pts[i].QueueWait != legacy[i].QueueWait ||
			pts[i].Utilization != legacy[i].Utilization ||
			pts[i].Improvement != legacy[i].Improvement ||
			pts[i].SpecThroughput != legacy[i].SpecThroughput {
			t.Errorf("point %d metrics differ from legacy", i)
		}
	}
}

// TestSweepTwoAxisGridMatchesLegacyGrid: a controller×predictor grid on
// the generic engine reproduces SweepPredictorControllers cell for cell
// (controller-major, baseline-free).
func TestSweepTwoAxisGridMatchesLegacyGrid(t *testing.T) {
	cfg := sweepTestConfig()
	preds := []predict.Kind{predict.KindOracle, predict.KindDepGraph}
	ctls := []adaptive.Kind{adaptive.KindStatic, adaptive.KindAIMD}
	legacy, err := SweepPredictorControllers(cfg, preds, ctls, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := Sweep(cfg, 2, 0, false, ControllerAxis(ctls), PredictorAxis(preds))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(legacy) {
		t.Fatalf("generic sweep: %d points, legacy %d", len(pts), len(legacy))
	}
	for i := range pts {
		wantLabels := []string{string(legacy[i].Controller), string(legacy[i].Predictor)}
		if !reflect.DeepEqual(pts[i].Labels, wantLabels) {
			t.Errorf("point %d labels = %v, want %v", i, pts[i].Labels, wantLabels)
		}
		if pts[i].Access != legacy[i].Access ||
			pts[i].DemandAccess != legacy[i].DemandAccess ||
			pts[i].Lambda != legacy[i].Lambda ||
			pts[i].L1Error != legacy[i].L1Error ||
			pts[i].SpecThroughput != legacy[i].SpecThroughput ||
			pts[i].HitRatio != legacy[i].HitRatio ||
			pts[i].WastedFraction != legacy[i].WastedFraction {
			t.Errorf("point %d metrics differ from legacy (%s/%s)", i, legacy[i].Controller, legacy[i].Predictor)
		}
		if pts[i].Improvement.N() != 0 {
			t.Errorf("point %d has Improvement observations in a baseline-free sweep", i)
		}
	}
}

// TestSweepDisciplineAxisKeepsPreemptRules: the discipline axis clears
// the preempt flag on non-priority disciplines, exactly like the legacy
// schedFor path — a priority+preempt base must not poison fifo cells.
func TestSweepDisciplineAxisKeepsPreemptRules(t *testing.T) {
	cfg := sweepTestConfig()
	cfg.Sched.Kind = schedsrv.KindPriority
	cfg.Sched.Preempt = true
	pts, err := Sweep(cfg, 1, 0, false, DisciplineAxis([]schedsrv.Kind{schedsrv.KindFIFO, schedsrv.KindPriority}))
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Config.Sched.Preempt {
		t.Error("fifo cell kept the preempt flag")
	}
	if !pts[1].Config.Sched.Preempt {
		t.Error("priority cell lost the preempt flag")
	}
}

// TestSweepRejectsBadInput: engine-level validation mirrors the legacy
// entry points.
func TestSweepRejectsBadInput(t *testing.T) {
	cfg := sweepTestConfig()
	if _, err := Sweep(cfg, 0, 0, false); !errors.Is(err, ErrBadConfig) {
		t.Errorf("0 reps: err = %v, want ErrBadConfig", err)
	}
	if _, err := ClientsAxis([]int{2, 0}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("0 clients: err = %v, want ErrBadConfig", err)
	}
	bad := cfg
	bad.Clients = 0
	if _, err := Sweep(bad, 1, 0, false); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad base config: err = %v, want ErrBadConfig", err)
	}
	// A combination that only turns invalid once an axis applies.
	withPreempt := cfg
	withPreempt.Sched.Preempt = true
	withPreempt.Sched.Kind = schedsrv.KindPriority
	manual := Axis{Name: "discipline", Values: []AxisValue{{
		Label: "fifo",
		Apply: func(c *Config) { c.Sched.Kind = schedsrv.KindFIFO },
	}}}
	if _, err := Sweep(withPreempt, 1, 0, false, manual); !errors.Is(err, ErrBadConfig) {
		t.Errorf("invalid combo: err = %v, want ErrBadConfig", err)
	}
}
