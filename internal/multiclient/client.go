package multiclient

import (
	"sort"

	"prefetch/internal/adaptive"
	"prefetch/internal/cache"
	"prefetch/internal/core"
	"prefetch/internal/netsim"
	"prefetch/internal/obs"
	"prefetch/internal/predict"
	"prefetch/internal/rng"
	"prefetch/internal/stats"
	"prefetch/internal/webgraph"
)

// client is one browsing session: a random surfer with its own derived RNG
// stream, an SKP planner over a pluggable prediction source (the oracle's
// true next-page distribution, or a model learned online from the access
// stream), and a private client-side cache. It runs as a callback state
// machine on the shared clock so any number of clients interleave on the
// same timeline.
type client struct {
	id     int
	cfg    *Config
	clock  *netsim.Clock
	server *server
	site   *webgraph.Site
	surfer *webgraph.Surfer
	rand   *rng.Source

	// pred is the prediction source the planner consumes. oracle marks
	// the true-distribution source, whose per-round L1 error is zero by
	// construction and therefore not recomputed.
	pred     predict.Source
	oracle   bool
	predName string

	// Scripted mode (see shard.go): when script is non-nil the client's
	// draws and predictions were precomputed by a Phase-A shard worker —
	// rand, surfer and pred are nil, table is the shared ranked candidate
	// table (stationary oracle) or nil, and state tracks the current page
	// the surfer would be on.
	script *Script
	table  [][]core.Item
	state  int

	// Page-indexed per-round state (the page space is dense 0..P-1, so
	// arrays replace the seed's maps on the hot path). ready is a round
	// stamp — ready[p] == round ⇔ a prefetch of p completed this round —
	// so "clear the set" at round start is free (rounds start at 1, the
	// zero stamp never matches). pending and specReady are plain flags
	// with the seed's map semantics.
	cache     *cache.Cache // nil ⇒ per-round prefetch-only semantics
	ready     []int        // prefetches completed this round (cache == nil)
	pending   []bool       // pages requested from the server, not yet completed
	specReady []bool       // cached pages whose latest store was speculative and unused

	round       int
	roundsLeft  int
	waitingFor  int  // page the client is blocked on; -1 when browsing
	demandRound bool // this round needed a network fetch (shared or own)
	requestedAt float64

	// nextPage/demandFn are the one demand timer the client ever has in
	// flight, preallocated once so startRound does not close over the
	// drawn page each round.
	nextPage int
	demandFn func()

	// Closed-loop speculation control (internal/adaptive): the controller
	// maps each round's congestion feedback to the λ the plan is priced
	// at. The bookkeeping below carries the client's own observations
	// between rounds. ctrlStatic marks the static controller, whose λ
	// ignores feedback entirely: with tracing off nothing consumes the
	// congestion snapshot, so observe can skip the (pure, read-only)
	// utilisation estimate without changing a single result byte.
	ctrl           adaptive.Controller
	ctrlStatic     bool
	curLambda      float64
	lastDemandWait float64 // own demand queueing delay observed last round
	prevDropped    int64   // own admission drops at the last feedback
	prevDeferred   int64   // server-wide deferral total at the last feedback

	// tr is the run's normalised tracer (nil = disabled). specLog
	// records completed speculative transfers while tracing so the
	// post-run pass can attribute each one as useful or wasted.
	tr      obs.Tracer
	specLog []specRecord

	access            stats.Accumulator
	demandAccess      stats.Accumulator // access times of rounds that fetched
	queueWait         stats.Accumulator
	lambdaTrace       stats.Accumulator // λ used each planned round
	l1Trace           stats.Accumulator // prediction L1 error each planned round
	prefetchIssued    int64
	prefetchDropped   int64 // speculative submissions admission refused
	prefetchCompleted int64 // speculative transfers that finished
	prefetchUseful    int64 // completed speculative transfers that served a demand
	demandFetches     int64
	zeroWaitRounds    int64
}

// specRecord is one completed speculative transfer awaiting its
// useful-or-wasted resolution, with the predictor candidate
// probability that justified issuing it.
type specRecord struct {
	page  int
	round int // round the prefetch was planned in
	prob  float64
	used  bool
}

func newClient(id int, cfg *Config, clock *netsim.Clock, srv *server, site *webgraph.Site, agg *predict.Aggregate, scripts *Scripts, script *Script, tr obs.Tracer) (*client, error) {
	c := &client{
		id:         id,
		cfg:        cfg,
		clock:      clock,
		server:     srv,
		site:       site,
		tr:         tr,
		ready:      make([]int, len(site.Pages)),
		pending:    make([]bool, len(site.Pages)),
		specReady:  make([]bool, len(site.Pages)),
		roundsLeft: cfg.Rounds,
		waitingFor: -1,
	}
	c.demandFn = func() { c.request(c.nextPage) }
	c.oracle = cfg.Predict.Kind == "" || cfg.Predict.Kind == predict.KindOracle
	if script != nil {
		// Scripted mode: the Phase-A shard worker already consumed this
		// client's random streams and predictor; the live client only
		// replays the script against the shared clock and server.
		c.script = script
		c.table = scripts.Table
		c.predName = scripts.PredName
	} else {
		c.rand = rng.Derive(cfg.Seed, clientLabel(id))
		c.surfer = webgraph.NewSurfer(c.rand, site, cfg.FollowProb)
		if cfg.DriftEvery > 0 {
			// Non-stationary mode: the hot set re-draws every DriftEvery
			// rounds (the surfer steps once per round) from a per-client
			// derived stream. The oracle hook below reads the surfer's
			// current phase, so oracle predictions stay exact across shifts.
			c.surfer.EnableDrift(rng.Derive(cfg.Seed, driftLabel(id)), cfg.DriftEvery)
		}
		pred, err := predict.New(cfg.Predict, id, c.surfer.NextDistributionFrom, agg)
		if err != nil {
			return nil, err
		}
		c.pred = pred
		c.predName = pred.Name()
		if !cfg.DisablePrefetch {
			// Seed the access stream with the start page so learned models
			// have the first transition's context (a no-op for the oracle).
			c.pred.Observe(c.surfer.Current())
		}
	}
	ctrl, err := adaptive.New(cfg.Adaptive)
	if err != nil {
		return nil, err
	}
	c.ctrl = ctrl
	c.ctrlStatic = cfg.Adaptive.Kind == "" || cfg.Adaptive.Kind == adaptive.KindStatic
	if cfg.ClientCacheSlots > 0 {
		cc, err := cache.New(cfg.ClientCacheSlots)
		if err != nil {
			return nil, err
		}
		c.cache = cc
	}
	return c, nil
}

// holds reports whether the page is usable without a network fetch.
func (c *client) holds(page int) bool {
	if c.cache != nil {
		return c.cache.Contains(page)
	}
	return c.ready[page] == c.round
}

// store keeps a completed retrieval. Without a client cache the item is
// usable only within the round that planned it (netsim.Session's
// prefetch-only semantics: a stale leftover completing later is pure waste).
// specReady tracks which resident pages owe their residency to an unused
// speculative transfer: residency only changes through store and LRU
// eviction, and attribution only happens while the page is held, so the
// latest store always determines the flag correctly.
func (c *client) store(req request) {
	if c.cache == nil {
		if req.round == c.round {
			c.ready[req.page] = c.round
		}
		return
	}
	insertLRU(c.cache, req.page, c.site.Pages[req.page].Retrieval)
	c.specReady[req.page] = !req.demand
}

// startRound plans and issues this round's prefetches, draws the viewing
// time and the next page, and schedules the demand request. Leftover
// transfers from earlier rounds stay in the server queue and intrude on
// this round — the §4.4 stretch generalised to a shared link.
func (c *client) startRound(now float64) {
	if c.roundsLeft == 0 {
		return
	}
	// Server-side prefetching piggybacks on round starts: the warmer is
	// internally rate-limited and a no-op unless cache warming is enabled.
	c.server.maybeWarm(now)
	c.roundsLeft--
	c.round++ // advancing the round stamp implicitly clears c.ready

	var v float64
	if c.script != nil {
		v = c.script.Viewing[c.round-1]
	} else {
		v = c.rand.Exp(1 / c.cfg.MeanViewing)
		if v < c.cfg.MinViewing {
			v = c.cfg.MinViewing
		}
	}
	if c.tr != nil {
		ev := obs.Ev(now, obs.KindRoundStart, c.id)
		ev.Round = c.round
		ev.Viewing = v
		c.tr.Emit(ev)
	}

	if !c.cfg.DisablePrefetch {
		c.observe(now)
		plan := c.plan(v)
		for _, it := range plan.Items {
			c.prefetchIssued++
			if c.tr != nil {
				ev := obs.Ev(now, obs.KindSpecIssue, c.id)
				ev.Round = c.round
				ev.Page = it.ID
				ev.Prob = it.Prob
				ev.Service = it.Retrieval
				c.tr.Emit(ev)
			}
			ok := c.server.enqueue(request{
				client:   c,
				page:     it.ID,
				duration: it.Retrieval,
				round:    c.round,
				prob:     it.Prob,
			})
			if !ok {
				// Admission control dropped it: no transfer will happen,
				// so the page must stay requestable on demand.
				c.prefetchDropped++
				continue
			}
			c.pending[it.ID] = true
		}
	}

	if c.script != nil {
		c.nextPage = int(c.script.Next[c.round-1])
		c.state = c.nextPage // the page plan() will rank from next round
	} else {
		c.nextPage = c.surfer.Step()
	}
	c.clock.Schedule(now+v, c.demandFn)
}

// observe closes the feedback loop: it reads the server's congestion
// snapshot and the client's own last-round observations, and lets the
// controller set this round's λ. Feedback collection is read-only, so
// the static controller's timeline is bit-for-bit the fixed-λ planner's.
func (c *client) observe(now float64) {
	if c.ctrlStatic && c.tr == nil {
		// The static controller ignores feedback and no trace records it;
		// the snapshot read is pure, so skipping it cannot change results.
		c.curLambda = c.ctrl.Lambda(adaptive.Feedback{Round: c.round})
		c.lambdaTrace.Add(c.curLambda)
		return
	}
	snap := c.server.snapshot(now)
	fb := adaptive.Feedback{
		Round:        c.round,
		Utilization:  snap.Utilization,
		QueuedDemand: snap.QueuedDemand,
		DemandDelay:  c.lastDemandWait,
		Dropped:      c.prefetchDropped - c.prevDropped,
		Deferred:     snap.DeferredTotal - c.prevDeferred,
	}
	c.prevDropped = c.prefetchDropped
	c.prevDeferred = snap.DeferredTotal
	c.curLambda = c.ctrl.Lambda(fb)
	c.lambdaTrace.Add(c.curLambda)
	if c.tr != nil {
		ev := obs.Ev(now, obs.KindLambda, c.id)
		ev.Round = c.round
		ev.Lambda = c.curLambda
		ev.Util = fb.Utilization
		ev.QueuedDemand = fb.QueuedDemand
		ev.Waited = fb.DemandDelay
		ev.Dropped = fb.Dropped
		ev.Deferred = fb.Deferred
		c.tr.Emit(ev)
	}
}

// plan solves the cost-aware SKP at the controller's current λ over the
// prediction source's candidate distribution for the current page,
// excluding pages already held or in flight. Candidates are capped at the
// MaxCandidates highest-probability pages to bound the solver's search.
// Each planned round also records the prediction's L1 error against the
// surfer's true distribution (zero by construction for the oracle, whose
// hot path skips the comparison).
func (c *client) plan(viewing float64) core.Plan {
	var (
		state int
		l1    float64
		items []core.Item
	)
	if c.script != nil {
		// Scripted: the full ranked candidate list was precomputed (or is
		// the shared stationary table); only the timing-dependent parts —
		// the held/in-flight filter and the cap — run here. Filtering a
		// ranked list then capping equals the inline path's filter-sort-cap
		// because the ranking key is a total order independent of the
		// filter.
		state = c.state
		if c.script.L1 != nil {
			l1 = c.script.L1[c.round-1]
		}
		ranked := c.table
		var cands []core.Item
		if ranked != nil {
			cands = ranked[state]
		} else {
			cands = c.script.Cands[c.round-1]
		}
		c.l1Trace.Add(l1)
		items = c.server.planBuf[:0]
		for i := range cands {
			if len(items) == c.cfg.MaxCandidates {
				break
			}
			if c.holds(cands[i].ID) || c.pending[cands[i].ID] {
				continue
			}
			items = append(items, cands[i])
		}
		c.server.planBuf = items
	} else {
		state = c.surfer.Current()
		dist := c.pred.Next(state)
		if !c.oracle {
			l1 = predict.L1(dist, c.surfer.NextDistributionFrom(state))
		}
		c.l1Trace.Add(l1)
		items = c.server.planBuf[:0]
		for page, prob := range dist {
			if prob <= 0 || c.holds(page) || c.pending[page] {
				continue
			}
			//lint:allow maporder sorted below via the reusable sorter (total-order key: prob desc, id asc)
			items = append(items, core.Item{ID: page, Prob: prob, Retrieval: c.site.Pages[page].Retrieval})
		}
		c.server.planBuf = items // retain any growth for the next plan
		c.server.sorter.items = items
		sort.Sort(&c.server.sorter)
		if len(items) > c.cfg.MaxCandidates {
			items = items[:c.cfg.MaxCandidates]
		}
	}
	if c.tr != nil {
		ev := obs.Ev(c.clock.Now(), obs.KindPredictNext, c.id)
		ev.Round = c.round
		ev.Page = state
		ev.L1 = l1
		ev.Cands = len(items)
		c.tr.Emit(ev)
	}
	problem := core.Problem{Items: items, Viewing: viewing, TotalProb: 1}
	plan, _, err := c.server.solver.Solve(problem, core.Options{}.WithNetworkLambda(c.curLambda))
	if err != nil {
		// The problem is constructed valid by design; a failure here is a
		// simulator bug, not a configuration error.
		panic(err)
	}
	return plan
}

// itemSorter orders plan candidates by probability (desc) then page id —
// the seed's sort.Slice comparator as a persistent sort.Interface, so the
// per-round sort does not allocate a closure or reflection swapper. IDs
// are unique, so the order is a total order and algorithm-independent.
type itemSorter struct{ items []core.Item }

func (s *itemSorter) Len() int      { return len(s.items) }
func (s *itemSorter) Swap(a, b int) { s.items[a], s.items[b] = s.items[b], s.items[a] }
func (s *itemSorter) Less(a, b int) bool {
	if s.items[a].Prob != s.items[b].Prob {
		return s.items[a].Prob > s.items[b].Prob
	}
	return s.items[a].ID < s.items[b].ID
}

// request is the demand access at the end of the viewing period. The
// accessed page is also the next item of the prediction source's training
// stream (a no-op for the oracle).
func (c *client) request(page int) {
	c.requestedAt = c.clock.Now()
	if !c.cfg.DisablePrefetch {
		if c.pred != nil {
			// Scripted clients trained their predictor during Phase A;
			// only the trace event belongs to the live timeline.
			c.pred.Observe(page)
		}
		if c.tr != nil {
			ev := obs.Ev(c.requestedAt, obs.KindPredictObserve, c.id)
			ev.Round = c.round
			ev.Page = page
			c.tr.Emit(ev)
		}
	}
	if c.holds(page) {
		if c.cache != nil {
			c.cache.RecordAccess(page)
			if c.specReady[page] {
				c.prefetchUseful++
				c.specReady[page] = false
				c.markSpecUsed(page)
			}
		} else {
			// Without a client cache every held page was prefetched this
			// round: the hit is speculation paying off by definition.
			c.prefetchUseful++
			c.markSpecUsed(page)
		}
		c.lastDemandWait = 0
		c.respond(0)
		return
	}
	c.waitingFor = page
	c.demandRound = true
	if c.tr != nil {
		ev := obs.Ev(c.requestedAt, obs.KindDemandIssue, c.id)
		ev.Round = c.round
		ev.Page = page
		c.tr.Emit(ev)
	}
	if c.pending[page] {
		// Already queued or in flight as a prefetch: sequential semantics,
		// the demand waits for the speculative transfer to finish — but the
		// scheduler learns the transfer is now demand-critical, so
		// class-aware disciplines stop deprioritising it. Under FIFO this
		// is a pure accounting change and reorders nothing.
		c.server.promote(c.id, page)
		return
	}
	c.demandFetches++
	c.server.enqueue(request{
		client:   c,
		page:     page,
		duration: c.site.Pages[page].Retrieval,
		demand:   true,
		round:    c.round,
	})
}

// markSpecUsed resolves the latest unused speculative transfer of page
// as useful, while tracing (specLog is only kept then).
func (c *client) markSpecUsed(page int) {
	if c.tr == nil {
		return
	}
	for i := len(c.specLog) - 1; i >= 0; i-- {
		if c.specLog[i].page == page && !c.specLog[i].used {
			c.specLog[i].used = true
			ev := obs.Ev(c.clock.Now(), obs.KindSpecUseful, c.id)
			ev.Round = c.round
			ev.Page = page
			ev.Prob = c.specLog[i].prob
			c.tr.Emit(ev)
			return
		}
	}
}

// onTransferDone is the server's completion callback.
func (c *client) onTransferDone(req request, waited float64) {
	c.pending[req.page] = false
	c.queueWait.Add(waited)
	if !req.demand {
		c.prefetchCompleted++
		if c.tr != nil {
			c.specLog = append(c.specLog, specRecord{page: req.page, round: req.round, prob: req.prob})
		}
	}
	c.store(req)
	if c.waitingFor == req.page {
		if !req.demand {
			// A promoted prefetch finishing the demand it was promoted
			// for: the speculative transfer served a real access.
			c.prefetchUseful++
			c.specReady[req.page] = false
			c.markSpecUsed(req.page)
		}
		c.waitingFor = -1
		c.lastDemandWait = waited
		c.respond(c.clock.Now() - c.requestedAt)
	}
}

// respond closes the round and immediately begins the next one.
func (c *client) respond(access float64) {
	if c.tr != nil {
		ev := obs.Ev(c.clock.Now(), obs.KindRoundEnd, c.id)
		ev.Round = c.round
		ev.Access = access
		ev.Demand = c.demandRound
		c.tr.Emit(ev)
	}
	c.access.Add(access)
	if c.demandRound {
		c.demandAccess.Add(access)
		c.demandRound = false
	}
	if access == 0 {
		c.zeroWaitRounds++
	}
	c.startRound(c.clock.Now())
}
