package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams from identical seeds diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must not merely replay the parent's.
	matches := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			matches++
		}
	}
	if matches > 2 {
		t.Fatalf("split stream tracks parent: %d/100 matches", matches)
	}
}

func TestDeriveDeterminism(t *testing.T) {
	a := Derive(42, "client/3")
	b := Derive(42, "client/3")
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("derived streams from identical (seed, label) diverged at step %d", i)
		}
	}
}

func TestDeriveLabelsIndependent(t *testing.T) {
	labels := []string{"site", "client/0", "client/1", "client/10"}
	for i, la := range labels {
		for _, lb := range labels[i+1:] {
			a, b := Derive(9, la), Derive(9, lb)
			same := 0
			for k := 0; k < 100; k++ {
				if a.Uint64() == b.Uint64() {
					same++
				}
			}
			if same > 2 {
				t.Fatalf("labels %q and %q produced %d/100 identical outputs", la, lb, same)
			}
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntNBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 10, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.IntN(n)
			if v < 0 || v >= n {
				t.Fatalf("IntN(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntNUniform(t *testing.T) {
	r := New(6)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.IntN(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d deviates from %v", i, c, want)
		}
	}
}

func TestIntNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntN(0) did not panic")
		}
	}()
	New(1).IntN(0)
}

func TestIntRange(t *testing.T) {
	r := New(8)
	seenLo, seenHi := false, false
	for i := 0; i < 10000; i++ {
		v := r.IntRange(1, 30)
		if v < 1 || v > 30 {
			t.Fatalf("IntRange(1,30) = %d", v)
		}
		if v == 1 {
			seenLo = true
		}
		if v == 30 {
			seenHi = true
		}
	}
	if !seenLo || !seenHi {
		t.Fatal("IntRange(1,30) never hit an endpoint in 10000 draws; inclusive bounds broken")
	}
}

func TestIntRangeSingleton(t *testing.T) {
	r := New(9)
	for i := 0; i < 10; i++ {
		if v := r.IntRange(5, 5); v != 5 {
			t.Fatalf("IntRange(5,5) = %d", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(10)
	const lambda, n = 2.0, 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(lambda)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/lambda) > 0.01 {
		t.Fatalf("Exp(%v) mean = %v, want %v", lambda, mean, 1/lambda)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(11)
	const mu, sigma, n = 3.0, 2.0, 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm(mu, sigma)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-mu) > 0.05 {
		t.Fatalf("Norm mean = %v, want %v", mean, mu)
	}
	if math.Abs(variance-sigma*sigma) > 0.2 {
		t.Fatalf("Norm variance = %v, want %v", variance, sigma*sigma)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(12)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(13)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed element multiset: sum %d -> %d", sum, got)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := New(14)
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%100) + 1
		k := int(kRaw) % (n + 1)
		s := r.SampleWithoutReplacement(n, k)
		if len(s) != k {
			return false
		}
		seen := make(map[int]bool, k)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleWithoutReplacementCoverage(t *testing.T) {
	// Sampling n of n must return every element.
	r := New(15)
	s := r.SampleWithoutReplacement(10, 10)
	seen := make([]bool, 10)
	for _, v := range s {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("element %d missing from full sample", i)
		}
	}
}

func TestCategoricalRespectsWeights(t *testing.T) {
	r := New(16)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[r.Categorical(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.15 {
		t.Fatalf("weight-3 vs weight-1 ratio = %v, want ~3", ratio)
	}
}

func TestCategoricalPanics(t *testing.T) {
	cases := [][]float64{{}, {0, 0}, {-1, 2}, {math.NaN()}}
	for _, w := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Categorical(%v) did not panic", w)
				}
			}()
			New(1).Categorical(w)
		}()
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	r := New(17)
	for _, alpha := range []float64{0.1, 0.5, 1, 5} {
		out := make([]float64, 12)
		r.Dirichlet(alpha, out)
		var sum float64
		for _, p := range out {
			if p < 0 {
				t.Fatalf("Dirichlet(alpha=%v) produced negative mass %v", alpha, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Dirichlet(alpha=%v) sums to %v", alpha, sum)
		}
	}
}

func TestDirichletConcentration(t *testing.T) {
	// Small alpha should concentrate mass: the max component under alpha=0.1
	// should on average dominate the max under alpha=5.
	r := New(18)
	maxMean := func(alpha float64) float64 {
		var total float64
		out := make([]float64, 10)
		const reps = 2000
		for i := 0; i < reps; i++ {
			r.Dirichlet(alpha, out)
			m := 0.0
			for _, p := range out {
				if p > m {
					m = p
				}
			}
			total += m
		}
		return total / reps
	}
	lo, hi := maxMean(5), maxMean(0.1)
	if hi <= lo {
		t.Fatalf("alpha=0.1 max share %v not greater than alpha=5 max share %v", hi, lo)
	}
}

func TestZeroStateGuard(t *testing.T) {
	// Whatever the seed, the generator must produce varied output.
	for _, seed := range []uint64{0, 1, math.MaxUint64} {
		r := New(seed)
		a, b := r.Uint64(), r.Uint64()
		if a == 0 && b == 0 {
			t.Fatalf("seed %d produced a dead stream", seed)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkCategorical10(b *testing.B) {
	r := New(1)
	w := make([]float64, 10)
	for i := range w {
		w[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Categorical(w)
	}
}
