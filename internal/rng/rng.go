// Package rng provides a small, deterministic, splittable pseudo-random
// number generator and the handful of distributions the simulations need.
//
// The generator is xoshiro256++ seeded through splitmix64, following the
// reference design by Blackman and Vigna. It is implemented locally (rather
// than delegating to math/rand) so that every experiment in this repository
// is bit-for-bit reproducible across Go releases: the published figures are
// regenerated from fixed seeds and must not drift when the standard library
// changes its stream.
//
// Sources are not safe for concurrent use; derive one Source per goroutine
// with Split, which produces statistically independent streams.
package rng

import "math"

// Source is a xoshiro256++ pseudo-random generator. The zero value is not
// usable; construct with New.
type Source struct {
	s [4]uint64
}

// splitmix64 advances the state and returns the next splitmix64 output.
// It is used to expand a single seed word into the xoshiro state, as
// recommended by the xoshiro authors.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given seed. Distinct seeds give
// independent streams; the same seed always gives the same stream.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = splitmix64(&sm)
	}
	// The all-zero state is invalid for xoshiro; splitmix64 cannot emit four
	// zero words in a row, but guard anyway so a hostile seed cannot wedge us.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[0]+r.s[3], 23) + r.s[0]
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new Source whose stream is independent of the receiver's
// future output. The receiver is advanced.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// Derive returns a Source for the named subsystem, deterministically derived
// from a master seed: the same (seed, label) pair always yields the same
// stream, and distinct labels yield statistically independent streams. This
// is the partitioned-RNG idiom for concurrent simulations — each client or
// subsystem derives its own stream up front, so the interleaving of events
// at run time cannot perturb anyone's randomness.
func Derive(seed uint64, label string) *Source {
	return New(seed ^ fnv1a64(label))
}

// fnv1a64 hashes a label with FNV-1a; implemented locally (like the
// generator itself) so derived streams never drift across Go releases.
func fnv1a64(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	// 53 high bits → uniform dyadic rational in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// IntN returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) IntN(n int) int {
	if n <= 0 {
		panic("rng: IntN called with n <= 0")
	}
	return int(r.uint64N(uint64(n)))
}

// uint64N returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method, which avoids modulo bias.
func (r *Source) uint64N(n uint64) uint64 {
	if n&(n-1) == 0 { // power of two
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling on the top of the 128-bit product.
	thresh := -n % n
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= thresh {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return hi, lo
}

// IntRange returns a uniform int in the inclusive range [lo, hi].
// It panics if hi < lo.
func (r *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + r.IntN(hi-lo+1)
}

// Float64Range returns a uniform float64 in [lo, hi).
func (r *Source) Float64Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponentially distributed float64 with rate lambda
// (mean 1/lambda). It panics if lambda <= 0.
func (r *Source) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: Exp called with lambda <= 0")
	}
	// Inverse CDF; 1-Float64() is in (0,1] so the log argument is never 0.
	return -math.Log(1-r.Float64()) / lambda
}

// Norm returns a normally distributed float64 with the given mean and
// standard deviation, using the Marsaglia polar method.
func (r *Source) Norm(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.IntN(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle performs a Fisher–Yates shuffle over n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		swap(i, j)
	}
}

// SampleWithoutReplacement returns k distinct values drawn uniformly from
// [0, n). It panics if k > n or k < 0. The result is in random order.
func (r *Source) SampleWithoutReplacement(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: SampleWithoutReplacement with k out of range")
	}
	// Partial Fisher–Yates over an index table; O(n) space, O(n) time. The
	// simulations sample 10..20 out of 100, so this is never the bottleneck.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.IntN(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	out := make([]int, k)
	copy(out, idx[:k])
	return out
}

// Categorical draws an index in [0, len(weights)) with probability
// proportional to weights[i]. Weights must be non-negative with a positive
// sum; otherwise Categorical panics. Linear scan: the candidate lists in
// this codebase are tens of items, so alias tables would be overkill.
func (r *Source) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: Categorical with negative or NaN weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: Categorical with non-positive weight sum")
	}
	u := r.Float64() * total
	acc := 0.0
	last := 0
	for i, w := range weights {
		if w == 0 {
			continue
		}
		acc += w
		last = i
		if u < acc {
			return i
		}
	}
	// Floating-point slack: u landed at or beyond the accumulated total.
	return last
}

// Dirichlet fills out with a sample from a symmetric Dirichlet distribution
// with concentration alpha over len(out) categories; the result sums to 1.
// alpha == 1 gives a uniform simplex sample ("flat"); alpha < 1 concentrates
// mass on few categories. It panics if alpha <= 0 or len(out) == 0.
func (r *Source) Dirichlet(alpha float64, out []float64) {
	if alpha <= 0 {
		panic("rng: Dirichlet with alpha <= 0")
	}
	if len(out) == 0 {
		panic("rng: Dirichlet with empty output")
	}
	var sum float64
	for i := range out {
		g := r.gamma(alpha)
		out[i] = g
		sum += g
	}
	if sum == 0 {
		// Vanishingly unlikely; fall back to uniform.
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return
	}
	for i := range out {
		out[i] /= sum
	}
}

// gamma draws from Gamma(shape, 1) using Marsaglia–Tsang, with the usual
// boost for shape < 1.
func (r *Source) gamma(shape float64) float64 {
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a)
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm(0, 1)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u == 0 {
			continue
		}
		if math.Log(u) < 0.5*x*x+d-d*v+d*math.Log(v) {
			return d * v
		}
	}
}
