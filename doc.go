// Package prefetch implements the performance model of speculative
// prefetching from Tuah, Kumar & Venkatesh, "A Performance Model of
// Speculative Prefetching in Distributed Information Systems"
// (IPPS/SPDP 1999), together with everything needed to reproduce the
// paper's evaluation and several of its proposed extensions.
//
// # The model in one paragraph
//
// While an application idles for a viewing time v, candidate items can be
// prefetched over a serial network link. Item i will be requested next with
// probability P_i and takes r_i time to retrieve. A prefetch list F = K·⟨z⟩
// retrieves all of K within v; the last item z may overrun by the stretch
// time st(F) = max(0, Σ r − v). Prefetches are never aborted, so a wrong
// guess delays a demand fetch by the stretch. The expected reduction in
// access time (the access improvement) is
//
//	g°(F) = Σ_{i∈F} P_i·r_i − (1 − Σ_{i∈K} P_i)·st(F)
//
// and maximising it is the Stretch Knapsack Problem (SKP), solved exactly
// by SolveSKP via branch-and-bound with the paper's Theorem-2 bound.
//
// # Quick start
//
//	problem := prefetch.Problem{
//		Items: []prefetch.Item{
//			{ID: 1, Prob: 0.6, Retrieval: 4},
//			{ID: 2, Prob: 0.3, Retrieval: 5},
//			{ID: 3, Prob: 0.1, Retrieval: 2},
//		},
//		Viewing: 6,
//	}
//	plan, _, err := prefetch.SolveSKP(problem)
//	// plan.IDs() == [1, 2]; prefetch.Gain(problem, plan) == 2.7
//
// # Layout
//
// The root package is the public API. Implementation lives under
// internal/: core (model + solvers), knapsack (the classic-KP baseline),
// access (probability generators, Markov sources, learned predictors),
// predict (the pluggable prediction subsystem — oracle vs learned
// sources, see MultiClientConfig.Predict), cache (replacement policies),
// sim (the paper's Monte-Carlo harnesses), netsim (an event-driven
// validation simulator), eventq (the binary-heap priority queue under
// every discrete-event scheduler), multiclient (N concurrent sessions
// contending for a shared server — see RunMultiClient), schedsrv (the
// server's pluggable scheduling subsystem), stats, plot, rng and sweep.
// The cmd/ tools regenerate every figure of the paper; see DESIGN.md for
// the experiment index and EXPERIMENTS.md for measured results.
//
// # Beyond the paper: shared-server contention
//
// The paper's model gives each client a private serial link. The
// multiclient simulation (RunMultiClient, CompareMultiClient,
// SweepMultiClient) runs N concurrent surfer sessions — each with its own
// SKP planner, derived random stream and client cache — against one server
// with bounded transfer concurrency and an optional shared server-side
// cache, reporting per-client and aggregate access times, queueing delay
// and server utilisation. Identical master seeds replay bit-for-bit.
//
// # Server scheduling: arbitrating speculation against demand
//
// Under contention, how the shared server arbitrates speculative vs.
// demand traffic dominates prefetching's net benefit, so that decision
// layer is pluggable (MultiClientConfig.Sched, a SchedConfig). Built-in
// disciplines: SchedFIFO (the seed behaviour — speculation and demand
// queue equally), SchedPriority (strict demand priority, optionally
// preempting in-flight speculative transfers), SchedWFQ (weighted fair
// queueing over per-client demand/speculative flows) and SchedShaped
// (per-client token-bucket bandwidth shaping; demand runs on credit
// debt). An admission controller (SchedConfig.AdmitUtil) drops or defers
// speculative requests while a sliding-window utilisation estimate is
// above threshold. A demand arrival for a page whose prefetch is still
// queued promotes that transfer into the demand class. Compare
// disciplines over identical workloads with SweepMultiClientDisciplines
// or examples/scheduling.
//
// # Adaptive speculation: closed-loop λ control
//
// The paper's §6 extension prices wasted network time into the
// objective, g°(F) − λ·Waste(F), but leaves λ a static knob tuned
// against a private link. Under contention the true price of
// speculation is the congestion it inflicts on everyone, so each
// multiclient client can instead run a feedback controller
// (MultiClientConfig.Adaptive, a ControllerConfig): every browsing
// round it observes the server's congestion feedback (SchedFeedback —
// sliding-window utilisation, queue depths, admission drop/defer
// totals) together with its own demand queueing delay, and the
// controller sets the λ the round's plan is solved with. Built-in
// controllers: ControllerStatic (λ fixed at Lambda0; the default, and
// with Lambda0 = 0 bit-for-bit the plain planner), ControllerAIMD
// (multiplicative back-off on congestion, additive recovery),
// ControllerTargetUtil (integral control toward a utilisation
// setpoint) and ControllerDelayGradient (backs off when the client's
// own demand delay rises round-over-round). Controllers are pure
// functions of the feedback stream — identical seeds replay
// bit-for-bit, and with zero congestion every controller converges to
// the static-λ plan. Compare controllers over identical workloads with
// SweepMultiClientControllers or examples/adaptive, which shows
// closed-loop λ on a plain FIFO server recovering nearly all of the
// priority discipline's demand-latency win at N=16.
//
// # Prediction: oracle vs learned access models
//
// Everything above still hands the planner the surfer's true next-page
// distribution — the access knowledge the paper presupposes (§1) but no
// deployed prefetcher has. The prediction subsystem
// (MultiClientConfig.Predict, a PredictConfig) makes that knowledge a
// pluggable Predictor (the single predictor interface of this API):
// PredictorOracle plans over the true distribution (the default,
// bit-for-bit the previous behaviour), PredictorDepGraph and
// PredictorPPM train an order-1 dependency graph or an order-k PPM model
// online on the client's own access stream (PredictConfig.ColdStart
// picks the cold-start fallback), and PredictorShared plans over one
// server-side aggregate model pooled across every client's stream —
// which, with MultiClientConfig.WarmServerCache, also drives server-side
// prefetching: the server pre-admits the model's top-probability pages
// into its shared cache between rounds (Result.WarmInserted/WarmHits).
// Each run reports the per-round prediction L1 error against the truth,
// the wasted-prefetch fraction and the zero-fetch hit ratio, so the
// oracle-vs-learned gap is measurable per discipline and per controller:
// SweepMultiClientPredictors isolates the predictor axis and
// SweepMultiClientPredictorControllers crosses it with λ controllers,
// marking each controller's (demand latency, speculative throughput)
// Pareto frontier — the view that keeps a weak predictor visible when
// adaptive λ masks it in raw latency. See examples/learned for the gap
// table at N=16 under FIFO and priority scheduling.
//
// # Non-stationary workloads: drifting hot sets
//
// The paper's model — and every sweep above — presumes a stationary
// access distribution, the regime in which a predictor that hoards
// evidence forever is optimal. MultiClientConfig.DriftEvery makes the
// workload non-stationary: every DriftEvery browsing rounds each
// surfer's preference vector (the hot set biasing its link choices and
// teleports) is re-drawn from a per-client derived drift stream, so
// runs stay deterministic and replay bit-for-bit while the hot set
// moves, and the oracle source stays exact across phases. Three
// drift-capable prediction sources ride the same axis: PredictorDecay
// (exponentially decayed transition counts, PredictConfig.HalfLife
// observations to half weight — the source that re-converges after a
// shift, property-tested against the dependency graph which does not),
// PredictorMixture (a popularity×transition blend at
// PredictConfig.MixWeight) and PredictorPPMEscape (PPM with escape
// blending across context orders down to global frequencies, replacing
// the hard cold-start fallback). See examples/drift for the stationary
// predictor ranking inverting under drift.
//
// # Fleet: replicated servers, routing and failures
//
// Every layer above still funnels all N clients into one server. The
// fleet simulation (RunFleet, a FleetConfig) replicates that server R
// times — each replica a full scheduling-arbitrated, cache-equipped,
// predictor-carrying server — and puts a pluggable Router in front:
// RouterRoundRobin spreads requests over live replicas,
// RouterLeastLoaded follows scheduler backlog feedback, and RouterHash
// pins each client to a home replica on a consistent-hash ring so
// caches and shared predictors specialise per replica. FleetConfig
// composes the whole stack — Base is a complete MultiClientConfig, the
// fleet section adds Replicas, Router and the failure regime, and one
// Validate covers it all. With FailEvery > 0 replicas crash on derived
// random schedules and repair after RecoverAfter: a crash loses the
// replica's queued and in-flight transfers, re-routes the displaced
// demand fetches to live replicas (or parks them for a total outage),
// and cold-starts the replica's scheduler and cache on recovery while
// its learned predictor state survives. Results add per-replica
// breakdowns, availability, re-route and lost-transfer counts; the
// trace gains route, reroute and replica fail/recover events, each
// stamped with its replica. A one-replica fleet without failures
// reproduces RunMultiClient bit for bit, and identical seeds replay
// byte-identical traces under any GOMAXPROCS. SweepFleetRouters (or the
// composable SweepFleet axes) crosses router kind × replica count under
// a failure regime; see examples/fleet for availability under churn.
//
// # One sweep engine
//
// All parameter studies run on one generic grid engine
// (SweepMultiClientGrid for the single-server model, SweepFleet for the
// fleet): compose axes — MultiClientClientsAxis,
// MultiClientDisciplineAxis, MultiClientControllerAxis,
// MultiClientPredictorAxis; FleetRouterAxis, FleetReplicasAxis,
// FleetFailEveryAxis — and the engine runs their cross product
// row-major (first axis slowest) with seed-replicated repetitions,
// validating every cell up front, deterministic for any worker count.
// The per-axis entry points above (SweepMultiClient,
// SweepMultiClientDisciplines, SweepMultiClientControllers,
// SweepMultiClientPredictors, SweepMultiClientPredictorControllers)
// remain as thin legacy wrappers over the same engine; new code should
// compose axes instead.
//
// # Observability: the decision trace
//
// Every aggregate above is a mean over thousands of individual
// speculation decisions, and the paper's argument is precisely about
// those decisions — each unit of access improvement is bought with
// λ-priced wasted bandwidth. The observability layer (internal/obs,
// re-exported here as Tracer, TraceEvent, TraceWriter, TraceCollector,
// MetricsRegistry) records them: a typed event stream stamped with the
// simulated clock covering round lifecycle, demand vs speculative
// issue and completion, the post-run useful/wasted resolution of every
// prefetch (carrying the predictor candidate probability that
// justified it), λ updates with their congestion-feedback snapshots,
// server queue and admission verdicts, and cache traffic. Any harness
// accepts a Tracer (MultiClientConfig.Tracer, PrefetchOnlyOptions,
// CacheOptions, SessionOptions); nil means disabled at the cost of one
// branch per would-be event. ReadDecisionTrace parses a trace back,
// WriteChromeTrace converts it into a Perfetto/chrome://tracing
// timeline, MetricsRegistry.Accumulate folds it into deterministic
// counters and histograms, and cmd/traceq answers the common questions
// (queue-delay distributions, λ trajectories, per-client wasted-page
// attribution) from the trace alone. Because a run is single-goroutine
// on one event clock, a fixed seed yields a byte-identical trace under
// any GOMAXPROCS — CI diffs the traces to enforce it.
//
// # Determinism invariants
//
// Everything above rests on bit-for-bit replay: one (seed, config)
// pair must reproduce identical metrics under any GOMAXPROCS, Go
// release, and map iteration order. Those invariants are mechanized by
// a static-analysis suite, internal/lint, run by cmd/simlint (and by
// `make lint`, the first step of `make test`):
//
//   - detrand forbids math/rand and wall-clock time in the simulation
//     packages — randomness flows through internal/rng streams derived
//     with rng.Derive, time through the simulated clock;
//   - maporder flags order-dependent work (float accumulation, unsorted
//     output collection, Observe-style training) under map iteration;
//   - validatecfg requires exported Config structs with Validate()
//     error methods to be validated before their fields are read on
//     exported entry paths;
//   - floatdet flags float reductions performed from goroutines into
//     shared variables, whose rounding order follows scheduling;
//   - shardpure holds goroutine workers in simulation packages to the
//     Phase-A purity contract — captured state is written only through
//     per-worker indexed slots and never read while a sibling writes;
//   - rnglabel keeps rng.Derive stream labels collision-free: no
//     duplicate literals per function, no loop-invariant labels inside
//     loops, no separator-less label construction;
//   - obskind keeps the obs event union's registries in sync — every
//     Kind in Kinds(), every Event field in the hand-rolled encoder,
//     every Kind switch arm a declared constant;
//   - poolreuse enforces the eventq.FreeList ownership contract — no
//     use after Put, no double Put, reference fields cleared first;
//   - snapshotmut keeps schedsrv.Feedback snapshots read-only outside
//     their defining package.
//
// A finding that is understood and acceptable is suppressed with a
// justified directive, `//lint:allow <analyzer> <reason>`, on the
// flagged line or the line above; `simlint -show-allowed ./...` audits
// every suppression. See the package documentation of
// prefetch/internal/lint for the analyzer details and escape-hatch
// semantics.
package prefetch
