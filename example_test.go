package prefetch_test

import (
	"fmt"

	"prefetch"
)

// The paper's running scenario: three candidate next accesses, six time
// units of viewing time to prefetch in.
func ExampleSolveSKP() {
	problem := prefetch.Problem{
		Items: []prefetch.Item{
			{ID: 1, Prob: 0.6, Retrieval: 4},
			{ID: 2, Prob: 0.3, Retrieval: 5},
			{ID: 3, Prob: 0.1, Retrieval: 2},
		},
		Viewing: 6,
	}
	plan, _, err := prefetch.SolveSKP(problem)
	if err != nil {
		panic(err)
	}
	gain, _ := prefetch.Gain(problem, plan)
	fmt.Printf("prefetch %v, expected improvement %.1f, stretch %.0f\n",
		plan.IDs(), gain, plan.Stretch(problem.Viewing))
	// Output:
	// prefetch [1 2], expected improvement 2.7, stretch 3
}

// The classic knapsack baseline never overruns the viewing time.
func ExampleSolveKP() {
	problem := prefetch.Problem{
		Items: []prefetch.Item{
			{ID: 1, Prob: 0.6, Retrieval: 4},
			{ID: 2, Prob: 0.3, Retrieval: 5},
			{ID: 3, Prob: 0.1, Retrieval: 2},
		},
		Viewing: 6,
	}
	plan, err := prefetch.SolveKP(problem)
	if err != nil {
		panic(err)
	}
	gain, _ := prefetch.Gain(problem, plan)
	fmt.Printf("prefetch %v, expected improvement %.1f, stretch %.0f\n",
		plan.IDs(), gain, plan.Stretch(problem.Viewing))
	// Output:
	// prefetch [1 3], expected improvement 2.6, stretch 0
}

// Pr-arbitration admits a prefetch only if it beats the cheapest cache
// victim; ties among worthless victims fall to the delay-saving metric.
func ExampleArbitrate() {
	candidate := prefetch.Plan{Items: []prefetch.Item{
		{ID: 10, Prob: 0.5, Retrieval: 4}, // value 2.0
	}}
	cache := []prefetch.CacheEntry{
		{ID: 1, Prob: 0, Retrieval: 9, Freq: 5},  // delay-saving 45
		{ID: 2, Prob: 0, Retrieval: 10, Freq: 1}, // delay-saving 10 → victim
	}
	res := prefetch.Arbitrate(candidate, cache, 0, prefetch.SubDS)
	fmt.Printf("admitted %v, evicting %v\n", res.Accepted.IDs(), res.Ejected())
	// Output:
	// admitted [10], evicting [2]
}

// AccessTime evaluates the three outcome classes of the paper's Fig. 2.
func ExampleAccessTime() {
	plan := prefetch.Plan{Items: []prefetch.Item{
		{ID: 1, Prob: 0.6, Retrieval: 4},
		{ID: 2, Prob: 0.3, Retrieval: 5},
	}}
	retrieval := func(id int) float64 { return 7 }
	for _, req := range []int{1, 2, 3} {
		fmt.Printf("request %d → T = %.0f\n", req, prefetch.AccessTime(plan, 6, req, retrieval))
	}
	// Output:
	// request 1 → T = 0
	// request 2 → T = 3
	// request 3 → T = 10
}
