package prefetch_test

// End-to-end integration tests: miniature versions of every experiment
// pipeline, asserting the orderings the paper reports (not absolute
// numbers). These are the same code paths cmd/figures drives at full
// scale.

import (
	"testing"

	"prefetch"
	"prefetch/internal/access"
	"prefetch/internal/core"
	"prefetch/internal/rng"
	"prefetch/internal/sim"
	"prefetch/internal/sweep"
	"prefetch/internal/workload"
)

func TestEndToEndFigure5Ordering(t *testing.T) {
	src, err := workload.NewRandomSource(rng.New(900), workload.Fig45Config(10, access.SkewyGen{}), 6000)
	if err != nil {
		t.Fatal(err)
	}
	rounds := workload.Collect(src)
	results, err := sim.RunPrefetchOnly(rounds, []sim.Policy{
		sim.NoPrefetch{}, sim.PerfectPolicy{}, sim.KPPolicy{}, sim.SKPPolicy{},
	}, sim.PrefetchOnlyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, res := range results {
		byName[res.Policy] = res.Overall.Mean()
	}
	// Paper's Fig. 5a ordering: perfect <= SKP <= KP <= none.
	if !(byName["perfect"] <= byName["skp"] &&
		byName["skp"] <= byName["kp"]+0.05 &&
		byName["kp"] < byName["none"]) {
		t.Fatalf("figure-5 ordering violated: %v", byName)
	}
}

func TestEndToEndFigure5FlatCollapsesSKPToKP(t *testing.T) {
	// Paper: "the performances of the SKP prefetch and the KP prefetch are
	// almost the same" under the flat method.
	src, err := workload.NewRandomSource(rng.New(901), workload.Fig45Config(10, access.FlatGen{}), 6000)
	if err != nil {
		t.Fatal(err)
	}
	rounds := workload.Collect(src)
	results, err := sim.RunPrefetchOnly(rounds, []sim.Policy{sim.KPPolicy{}, sim.SKPPolicy{}}, sim.PrefetchOnlyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	kp, skp := results[0].Overall.Mean(), results[1].Overall.Mean()
	if diff := kp - skp; diff < -0.3 || diff > 0.5 {
		t.Fatalf("flat: SKP (%v) and KP (%v) should nearly coincide", skp, kp)
	}
}

func TestEndToEndFigure7Ordering(t *testing.T) {
	trace, err := sim.BuildMarkovTrace(rng.New(902), access.Fig7MarkovConfig(), 1, 30, 6000)
	if err != nil {
		t.Fatal(err)
	}
	planners := sim.Fig7Planners(core.DeltaTheorem3)
	means, err := sweep.Map(planners, func(pl sim.CachePlanner) (float64, error) {
		res, err := sim.RunPrefetchCache(trace, pl, 30)
		if err != nil {
			return 0, err
		}
		return res.Access.Mean(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	noPr, kp, skp, lfu, ds := means[0], means[1], means[2], means[3], means[4]
	if !(ds <= lfu+0.2 && lfu <= skp+0.2 && skp <= kp+0.2 && kp < noPr) {
		t.Fatalf("figure-7 ordering violated: No=%v KP=%v SKP=%v LFU=%v DS=%v", noPr, kp, skp, lfu, ds)
	}
	// Sub-arbitration must provide a real win, not a tie (Fig. 7 "adding
	// sub-arbitration clearly improves the result").
	if ds >= skp {
		t.Fatalf("DS sub-arbitration (%v) did not improve on plain Pr (%v)", ds, skp)
	}
}

func TestEndToEndLambdaFrontierMonotone(t *testing.T) {
	src, err := workload.NewRandomSource(rng.New(903), workload.Fig45Config(10, access.SkewyGen{}), 4000)
	if err != nil {
		t.Fatal(err)
	}
	rounds := workload.Collect(src)
	lambdas := []float64{0, 0.1, 0.5, 2}
	var pols []sim.Policy
	for _, l := range lambdas {
		pols = append(pols, sim.CostAwarePolicy{Lambda: l})
	}
	results, err := sim.RunPrefetchOnly(rounds, pols, sim.PrefetchOnlyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Usage.Mean() > results[i-1].Usage.Mean()+1e-9 {
			t.Fatalf("network usage not decreasing along λ: %v -> %v",
				results[i-1].Usage.Mean(), results[i].Usage.Mean())
		}
		if results[i].Overall.Mean() < results[i-1].Overall.Mean()-0.05 {
			t.Fatalf("access time improved while paying more λ: %v -> %v",
				results[i-1].Overall.Mean(), results[i].Overall.Mean())
		}
	}
}

func TestEndToEndSizedCacheOrdering(t *testing.T) {
	r := rng.New(904)
	mcfg := access.Fig7MarkovConfig()
	mcfg.SkewAlpha = 8
	trace, err := sim.BuildMarkovTrace(r, mcfg, 1, 30, 5000)
	if err != nil {
		t.Fatal(err)
	}
	sizes := sim.BuildSizes(r, trace.Retrievals)
	var total int64
	for _, s := range sizes {
		total += s
	}
	noPf := sim.SizedPlanner{Label: "none", Solver: nil, Sub: core.SubDS, Ordering: sim.ByDensity}
	skp := sim.SizedPlanner{Label: "skp", Solver: sim.SKPPolicy{}, Sub: core.SubDS, Ordering: sim.ByDensity}
	a, err := sim.RunSizedPrefetchCache(trace, sizes, noPf, total/4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.RunSizedPrefetchCache(trace, sizes, skp, total/4)
	if err != nil {
		t.Fatal(err)
	}
	if b.Access.Mean() >= a.Access.Mean() {
		t.Fatalf("sized SKP (%v) did not beat no-prefetch (%v)", b.Access.Mean(), a.Access.Mean())
	}
}

// The facade can express a complete §5 decision loop (the webproxy example
// distilled), and the loop's bookkeeping stays consistent.
func TestEndToEndFacadeCacheLoop(t *testing.T) {
	r := prefetch.NewRand(905)
	site, err := prefetch.GenerateSite(r, prefetch.SiteConfig{
		Pages: 40, MinLinks: 3, MaxLinks: 6, ZipfS: 1, MinSizeKB: 1, MaxSizeKB: 50,
		BandwidthKBps: 16, LatencyS: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	surfer := prefetch.NewSurfer(r, site, 0.85)
	const slots = 10
	cached := map[int]bool{}
	freq := map[int]int64{}
	var total float64
	for step := 0; step < 1500; step++ {
		probs := surfer.NextDistribution()
		var cands []prefetch.Item
		for id, p := range probs {
			if !cached[id] {
				cands = append(cands, prefetch.Item{ID: id, Prob: p, Retrieval: site.Pages[id].Retrieval})
			}
		}
		plan, _, err := prefetch.SolveSKP(prefetch.Problem{Items: cands, Viewing: 5, TotalProb: 1})
		if err != nil {
			t.Fatal(err)
		}
		var entries []prefetch.CacheEntry
		for id := range cached {
			entries = append(entries, prefetch.CacheEntry{
				ID: id, Prob: probs[id], Retrieval: site.Pages[id].Retrieval, Freq: freq[id],
			})
		}
		res := prefetch.Arbitrate(plan, entries, slots-len(cached), prefetch.SubDS)
		for i, it := range res.Accepted.Items {
			if v := res.Victims[i]; v != prefetch.NoVictim {
				if !cached[v] {
					t.Fatalf("step %d: victim %d not cached", step, v)
				}
				delete(cached, v)
			}
			if cached[it.ID] {
				t.Fatalf("step %d: double-cached %d", step, it.ID)
			}
			cached[it.ID] = true
		}
		if len(cached) > slots {
			t.Fatalf("step %d: cache overflow: %d > %d", step, len(cached), slots)
		}
		next := surfer.Step()
		st := res.Accepted.Stretch(5)
		switch {
		case res.Accepted.Contains(next):
			total += prefetch.AccessTime(res.Accepted, 5, next, func(id int) float64 { return site.Pages[id].Retrieval })
		case cached[next]:
			// hit
		default:
			total += st + site.Pages[next].Retrieval
			if len(cached) >= slots {
				victim, ok := prefetch.DemandVictim(entriesOf(cached, probs, site, freq), prefetch.SubDS)
				if !ok {
					t.Fatal("no demand victim from full cache")
				}
				delete(cached, victim)
			}
			cached[next] = true
		}
		freq[next]++
	}
	if total <= 0 {
		t.Fatal("loop recorded no latency at all; bookkeeping suspicious")
	}
}

func entriesOf(cached map[int]bool, probs map[int]float64, site *prefetch.Site, freq map[int]int64) []prefetch.CacheEntry {
	var out []prefetch.CacheEntry
	for id := range cached {
		out = append(out, prefetch.CacheEntry{
			ID: id, Prob: probs[id], Retrieval: site.Pages[id].Retrieval, Freq: freq[id],
		})
	}
	return out
}
