# Benchmark-regression tooling. `make bench` reruns the tracked
# benchmarks, records them as BENCH_<sha>.json and gates against the
# committed BENCH_baseline.json via cmd/benchjson (>25% slower on any
# tracked benchmark fails). `make bench-baseline` refreshes the baseline
# after an intentional performance change — commit the result.
#
# The gate compares absolute ns/op, so the baseline must come from the
# same class of machine that runs the gate: after the first green CI run
# on main, download its BENCH_<sha>.json artifact and commit it as
# BENCH_baseline.json so baseline and measurements share runner
# hardware. A baseline recorded on a developer laptop is only meaningful
# for local `make bench` runs.

GO ?= go
SHA := $(shell git rev-parse --short=12 HEAD 2>/dev/null || echo dev)

# The tracked hot paths: the shared event-queue heap, the scheduling
# subsystem's submit/dispatch/complete cycle, the end-to-end multiclient
# simulation round (the N-scaling family N=64…4096 over the sharded
# core, plus oracle/learned/drift variants and the traced and
# disabled-tracer variants that hold the observability layer's overhead
# — off must stay within noise of the untraced baseline), the learned
# predictors' observe/predict cycle, and the multi-replica fleet round
# (routing + failure injection overhead on top of the single-server
# round). -benchmem feeds the allocation gate: cmd/benchjson fails any
# tracked benchmark whose allocs/op grows past its baseline.
BENCH_PATTERN := ^(BenchmarkEventQueue|BenchmarkSchedulerDequeue|BenchmarkMultiClientRound|BenchmarkMultiClientRoundLearned|BenchmarkMultiClientRoundDrift|BenchmarkMultiClientRoundTracerOff|BenchmarkMultiClientRoundTraced|BenchmarkPredictorObserve|BenchmarkPredictorObserveDecay|BenchmarkFleetRound)$$
BENCH_PKGS    := ./internal/eventq ./internal/schedsrv ./internal/multiclient ./internal/predict ./internal/fleet
BENCH_FLAGS   := -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime 300ms -count 3

.PHONY: test lint lint-allows bench bench-raw bench-baseline clean-bench profile sweep-learned sweep-drift sweep-fleet trace

test: lint
	$(GO) build ./...
	$(GO) test ./...

# Determinism & config-hygiene invariants (internal/lint): build the
# simlint multichecker and run the full suite (see `bin/simlint -list`)
# over the tree. Violations are fixed or suppressed with a justified
# `//lint:allow <analyzer> <reason>` directive; every suppression must
# appear in the committed lint-allows.txt inventory (refresh it with
# `make lint-allows` and commit the diff), so adding an allow is a
# reviewable act, never a silent one.
#
# bin/simlint is a real file target rebuilt only when analyzer or
# driver sources change, keyed on the same file set CI's cache uses.
SIMLINT_SRC := $(shell find internal/lint cmd/simlint -name '*.go' -not -path '*/testdata/*') go.mod

bin/simlint: $(SIMLINT_SRC)
	$(GO) build -o $@ ./cmd/simlint

lint: bin/simlint
	bin/simlint ./...
	bin/simlint -show-allowed ./... | diff -u lint-allows.txt - \
		|| { echo "lint-allows.txt is stale: run 'make lint-allows' and commit the diff"; exit 1; }

# Refresh the committed suppression inventory after adding or removing
# a //lint:allow directive.
lint-allows: bin/simlint
	bin/simlint -show-allowed ./... > lint-allows.txt

# Always re-runs (phony): a stale bench-raw.txt must never satisfy the
# gate. The redirect (not a tee pipe) preserves go test's exit status,
# so a failing benchmark aborts make instead of producing a truncated
# record.
bench-raw:
	$(GO) test $(BENCH_FLAGS) $(BENCH_PKGS) > bench-raw.txt
	@cat bench-raw.txt

bench: bench-raw
	$(GO) run ./cmd/benchjson -out BENCH_$(SHA).json -baseline BENCH_baseline.json \
		-note "make bench @ $(SHA)" < bench-raw.txt

bench-baseline: bench-raw
	$(GO) run ./cmd/benchjson -out BENCH_baseline.json -note "baseline @ $(SHA)" < bench-raw.txt

clean-bench:
	rm -f bench-raw.txt BENCH_*.json
	git checkout -- BENCH_baseline.json 2>/dev/null || true

# CPU + heap profiles of the heaviest tracked benchmark (the N=4096
# multiclient round over the sharded core), written to profile-out/ for
# pprof inspection; CI uploads the directory as an artifact so every
# main build ships a browsable profile of the hot path:
#
#	go tool pprof profile-out/multiclient.test profile-out/cpu.pprof
profile:
	rm -rf profile-out && mkdir -p profile-out
	$(GO) test -run '^$$' -bench '^BenchmarkMultiClientRound$$/N=4096' -benchtime 3x \
		-cpuprofile profile-out/cpu.pprof -memprofile profile-out/mem.pprof \
		-o profile-out/multiclient.test ./internal/multiclient | tee profile-out/bench.txt
	$(GO) tool pprof -top -nodecount 15 profile-out/multiclient.test profile-out/cpu.pprof \
		> profile-out/cpu.top.txt
	$(GO) tool pprof -top -nodecount 15 -sample_index=alloc_space profile-out/multiclient.test profile-out/mem.pprof \
		> profile-out/mem.top.txt
	@ls -l profile-out

# Sample observability bundle under trace-out/: a traced multiclient
# run (JSONL decision trace + metrics), the traceq report over it, and
# the Perfetto/chrome://tracing timeline. CI runs this and uploads the
# directory as an artifact, so every main build ships an inspectable
# trace of the reference configuration.
trace:
	rm -rf trace-out && mkdir -p trace-out
	$(GO) run ./cmd/prefetchsim -mode multiclient -clients 8 -rounds 120 \
		-discipline priority -controller aimd -predictor depgraph -seed 1 \
		-trace-out trace-out/run.jsonl -metrics-out trace-out/run.metrics.json
	$(GO) run ./cmd/traceq -chrome trace-out/run.chrome.json trace-out/run.jsonl \
		> trace-out/run.report.txt
	@cat trace-out/run.report.txt
	@ls -l trace-out

# Oracle-vs-learned gap report (examples/learned): predictor×controller
# tables with Pareto marks at N=16 under fifo and priority scheduling.
sweep-learned:
	$(GO) run ./examples/learned

# Non-stationary workload report (examples/drift): the same predictor
# sweep on a stationary and a drifting hot set, with the stationary
# predictor ranking inverting under drift.
sweep-drift:
	$(GO) run ./examples/drift

# Fleet report (examples/fleet): router × replica-count sweep with
# failure injection — availability, re-routed demand fetches and lost
# transfers per router under churn.
sweep-fleet:
	$(GO) run ./examples/fleet
