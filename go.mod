module prefetch

go 1.21
