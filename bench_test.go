package prefetch_test

// One benchmark per paper artefact (Figures 4, 5, 7) plus the ablations,
// so `go test -bench=.` regenerates a scaled-down version of every
// experiment and reports its headline metric alongside the runtime. The
// full-size figures are produced by cmd/figures; these benches exist to
// track the cost and the key outputs of each pipeline.

import (
	"testing"

	"prefetch"
	"prefetch/internal/access"
	"prefetch/internal/core"
	"prefetch/internal/rng"
	"prefetch/internal/sim"
	"prefetch/internal/workload"
)

// benchRounds builds a reproducible prefetch-only workload.
func benchRounds(b *testing.B, n, count int, gen access.ProbGen) []workload.Round {
	b.Helper()
	src, err := workload.NewRandomSource(rng.New(42), workload.Fig45Config(n, gen), count)
	if err != nil {
		b.Fatal(err)
	}
	return workload.Collect(src)
}

// BenchmarkFigure4Scatter runs the Figure-4 pipeline (SKP scatter, skewy,
// n=10) at 1000 rounds per op and reports the mean access time.
func BenchmarkFigure4Scatter(b *testing.B) {
	rounds := benchRounds(b, 10, 1000, access.SkewyGen{})
	policies := []sim.Policy{sim.SKPPolicy{}, sim.KPPolicy{}}
	b.ResetTimer()
	var mean float64
	for i := 0; i < b.N; i++ {
		results, err := sim.RunPrefetchOnly(rounds, policies, sim.PrefetchOnlyOptions{ScatterLimit: 500})
		if err != nil {
			b.Fatal(err)
		}
		mean = results[0].Overall.Mean()
	}
	b.ReportMetric(mean, "meanT")
}

// BenchmarkFigure5Panel runs one Figure-5 panel (all five series, n=10,
// skewy) at 1000 rounds per op.
func BenchmarkFigure5Panel(b *testing.B) {
	rounds := benchRounds(b, 10, 1000, access.SkewyGen{})
	policies := []sim.Policy{
		sim.NoPrefetch{}, sim.PerfectPolicy{}, sim.KPPolicy{},
		sim.SKPPolicy{Mode: core.DeltaPaperTail}, sim.SKPPolicy{},
	}
	b.ResetTimer()
	var skpMean float64
	for i := 0; i < b.N; i++ {
		results, err := sim.RunPrefetchOnly(rounds, policies, sim.PrefetchOnlyOptions{})
		if err != nil {
			b.Fatal(err)
		}
		skpMean = results[4].Overall.Mean()
	}
	b.ReportMetric(skpMean, "meanT-skp")
}

// BenchmarkFigure5PanelN25 is the n=25 variant (larger SKP instances).
func BenchmarkFigure5PanelN25(b *testing.B) {
	rounds := benchRounds(b, 25, 500, access.SkewyGen{})
	policies := []sim.Policy{sim.SKPPolicy{}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunPrefetchOnly(rounds, policies, sim.PrefetchOnlyOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7Point runs one Figure-7 point (SKP+Pr+DS, cache 40,
// 2000 requests) per op and reports mean access time and hit rate.
func BenchmarkFigure7Point(b *testing.B) {
	trace, err := sim.BuildMarkovTrace(rng.New(43), access.Fig7MarkovConfig(), 1, 30, 2000)
	if err != nil {
		b.Fatal(err)
	}
	planner := sim.Fig7Planners(core.DeltaTheorem3)[4] // SKP+Pr+DS
	b.ResetTimer()
	var res sim.CacheResult
	for i := 0; i < b.N; i++ {
		res, err = sim.RunPrefetchCache(trace, planner, 40)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Access.Mean(), "meanT")
	b.ReportMetric(res.HitRate(), "hitRate")
}

// BenchmarkFigure7NoPrefetch is the demand-caching baseline point.
func BenchmarkFigure7NoPrefetch(b *testing.B) {
	trace, err := sim.BuildMarkovTrace(rng.New(43), access.Fig7MarkovConfig(), 1, 30, 2000)
	if err != nil {
		b.Fatal(err)
	}
	planner := sim.Fig7Planners(core.DeltaTheorem3)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunPrefetchCache(trace, planner, 40); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPruning measures the Theorem-2 bound's effect: one op
// solves the same instance with and without pruning (E4).
func BenchmarkAblationPruning(b *testing.B) {
	r := rng.New(44)
	probs := make([]float64, 16)
	access.SkewyGen{}.Generate(r, probs)
	items := make([]core.Item, 16)
	for i := range items {
		items[i] = core.Item{ID: i, Prob: probs[i], Retrieval: float64(r.IntRange(1, 30))}
	}
	p := core.Problem{Items: items, Viewing: 60}
	b.ResetTimer()
	var with, without int64
	for i := 0; i < b.N; i++ {
		_, sw, err := core.SolveSKPOpts(p, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		_, swo, err := core.SolveSKPOpts(p, core.Options{DisableBound: true})
		if err != nil {
			b.Fatal(err)
		}
		with, without = sw.Nodes, swo.Nodes
	}
	b.ReportMetric(float64(with), "nodes-pruned")
	b.ReportMetric(float64(without), "nodes-unpruned")
}

// BenchmarkAblationDelta compares the literal Fig-3 δ with the corrected
// one on one small-v instance per op (E5).
func BenchmarkAblationDelta(b *testing.B) {
	rounds := benchRounds(b, 10, 200, access.SkewyGen{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rd := range rounds {
			p := rd.Problem()
			if _, _, err := core.SolveSKPPaper(p); err != nil {
				b.Fatal(err)
			}
			if _, _, err := core.SolveSKP(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkLookaheadSession runs the E6 event-driven session at 500
// requests per op.
func BenchmarkLookaheadSession(b *testing.B) {
	trace, err := sim.BuildMarkovTrace(rng.New(45), access.MarkovConfig{
		States: 50, MinOut: 5, MaxOut: 10, MinViewing: 1, MaxViewing: 20, SkewAlpha: 12,
	}, 1, 30, 500)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunMarkovSession(trace, sim.LookaheadPlanner{}, sim.SessionOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLambdaSweep runs the E7 Pareto sweep (6 λ values × 200 rounds)
// per op.
func BenchmarkLambdaSweep(b *testing.B) {
	rounds := benchRounds(b, 10, 200, access.SkewyGen{})
	var policies []sim.Policy
	for _, l := range []float64{0, 0.05, 0.15, 0.4, 1, 3} {
		policies = append(policies, sim.CostAwarePolicy{Lambda: l})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunPrefetchOnly(rounds, policies, sim.PrefetchOnlyOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSizedCachePoint runs one E9 point per op.
func BenchmarkSizedCachePoint(b *testing.B) {
	r := rng.New(46)
	trace, err := sim.BuildMarkovTrace(r, access.Fig7MarkovConfig(), 1, 30, 2000)
	if err != nil {
		b.Fatal(err)
	}
	sizes := sim.BuildSizes(r, trace.Retrievals)
	var total int64
	for _, s := range sizes {
		total += s
	}
	pl := sim.SizedPlanner{Label: "skp", Solver: sim.SKPPolicy{}, Sub: core.SubDS, Ordering: sim.ByDensity}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunSizedPrefetchCache(trace, sizes, pl, total/3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveSKPDepth2 measures the exact two-step solver on a
// Markov-style decision (12 candidates, 12 successor problems).
func BenchmarkSolveSKPDepth2(b *testing.B) {
	r := rng.New(49)
	mkProblem := func() core.Problem {
		n := 12
		probs := make([]float64, n)
		r.Dirichlet(0.5, probs)
		items := make([]core.Item, n)
		for i := range items {
			items[i] = core.Item{ID: i, Prob: probs[i], Retrieval: float64(r.IntRange(1, 30))}
		}
		return core.Problem{Items: items, Viewing: float64(r.IntRange(5, 40))}
	}
	p := mkProblem()
	var succ []core.WeightedProblem
	for _, it := range p.Items {
		succ = append(succ, core.WeightedProblem{Weight: it.Prob, Problem: mkProblem()})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.SolveSKPDepth2(p, succ); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveSKPFacade measures a single solver call through the public
// API at the Fig-4/5 instance size.
func BenchmarkSolveSKPFacade(b *testing.B) {
	r := prefetch.NewRand(47)
	probs := make([]float64, 10)
	prefetch.SkewyGen{}.Generate(r, probs)
	items := make([]prefetch.Item, 10)
	for i := range items {
		items[i] = prefetch.Item{ID: i, Prob: probs[i], Retrieval: float64(r.IntRange(1, 30))}
	}
	p := prefetch.Problem{Items: items, Viewing: 50}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := prefetch.SolveSKP(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArbitrate measures Figure-6 arbitration against a 100-entry
// cache with 15 candidates.
func BenchmarkArbitrate(b *testing.B) {
	r := prefetch.NewRand(48)
	var cand prefetch.Plan
	for i := 0; i < 15; i++ {
		cand.Items = append(cand.Items, prefetch.Item{
			ID: 1000 + i, Prob: r.Float64() * 0.2, Retrieval: float64(r.IntRange(1, 30)),
		})
	}
	entries := make([]prefetch.CacheEntry, 100)
	for i := range entries {
		entries[i] = prefetch.CacheEntry{
			ID: i, Prob: 0, Retrieval: float64(r.IntRange(1, 30)), Freq: int64(r.IntRange(0, 50)),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = prefetch.Arbitrate(cand, entries, 0, prefetch.SubDS)
	}
}
