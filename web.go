package prefetch

import (
	"prefetch/internal/adaptive"
	"prefetch/internal/multiclient"
	"prefetch/internal/netsim"
	"prefetch/internal/predict"
	"prefetch/internal/schedsrv"
	"prefetch/internal/webgraph"
)

// Web-browsing workload types (used by the webproxy and newspaper
// examples) and the event-driven network simulator (used to explore
// contention semantics beyond the paper's closed forms).
type (
	// Site is a generated web site: pages, links, sizes, retrieval times.
	Site = webgraph.Site
	// Page is one document of a Site.
	Page = webgraph.Page
	// SiteConfig parameterises GenerateSite.
	SiteConfig = webgraph.SiteConfig
	// Surfer is a random-surfer browsing model with an exposed true
	// next-page distribution.
	Surfer = webgraph.Surfer

	// Transfer is one retrieval on the simulated serial link.
	Transfer = netsim.Transfer
	// NetRound describes one viewing-then-request round for the
	// event-driven simulator.
	NetRound = netsim.Round
	// NetRoundResult reports the event-driven observations.
	NetRoundResult = netsim.RoundResult
	// NetMode selects prefetch/demand contention semantics.
	NetMode = netsim.Mode
)

// Event-driven contention modes.
const (
	// ModeSequential is the paper's semantics: prefetches are never
	// aborted; a demand fetch queues behind them.
	ModeSequential = netsim.ModeSequential
	// ModePreempt aborts prefetch work when a demand miss occurs.
	ModePreempt = netsim.ModePreempt
	// ModeShared splits bandwidth equally between the demand fetch and
	// the in-flight prefetches (the authors' earlier model, ref [15]).
	ModeShared = netsim.ModeShared
)

// DefaultSiteConfig returns a plausible small site over a slow link.
func DefaultSiteConfig() SiteConfig { return webgraph.DefaultSiteConfig() }

// GenerateSite builds a random site from the config.
func GenerateSite(r *Rand, cfg SiteConfig) (*Site, error) { return webgraph.Generate(r, cfg) }

// NewSurfer starts a random surfer on the site (followProb outside (0,1)
// defaults to 0.85).
func NewSurfer(r *Rand, site *Site, followProb float64) *Surfer {
	return webgraph.NewSurfer(r, site, followProb)
}

// SimulateNetRound plays one round through the discrete-event simulator.
func SimulateNetRound(round NetRound) (NetRoundResult, error) { return netsim.SimulateRound(round) }

// Multi-client shared-server simulation: N concurrent surfers, each with
// its own SKP planner and client cache, contending for a server with
// bounded transfer concurrency and an optional shared server-side cache.
type (
	// MultiClientConfig parameterises RunMultiClient.
	MultiClientConfig = multiclient.Config
	// MultiClientResult aggregates one multi-client run.
	MultiClientResult = multiclient.Result
	// MultiClientClientResult is one session's view of the run.
	MultiClientClientResult = multiclient.ClientResult
	// MultiClientComparison pairs a prefetching run with its no-prefetch
	// baseline over the identical workload.
	MultiClientComparison = multiclient.Comparison
	// MultiClientSweepPoint aggregates seed replications at one client count.
	MultiClientSweepPoint = multiclient.SweepPoint
	// MultiClientDisciplinePoint aggregates seed replications of one
	// scheduling discipline at a fixed client count.
	MultiClientDisciplinePoint = multiclient.DisciplinePoint
)

// Server scheduling subsystem: the shared server's queueing discipline,
// per-client bandwidth shaping and speculative admission control
// (MultiClientConfig.Sched).
type (
	// SchedConfig selects and tunes the server scheduling discipline.
	SchedConfig = schedsrv.Config
	// SchedKind names a built-in scheduling discipline.
	SchedKind = schedsrv.Kind
	// SchedDiscipline is the pluggable queueing-discipline interface.
	SchedDiscipline = schedsrv.Discipline
	// SchedAdmissionController gates speculative requests by utilisation.
	SchedAdmissionController = schedsrv.AdmissionController
	// SchedRequest is one transfer submitted to the scheduling subsystem.
	SchedRequest = schedsrv.Request
)

// The built-in server scheduling disciplines.
const (
	// SchedFIFO is the seed behaviour: one queue, arrival order.
	SchedFIFO = schedsrv.KindFIFO
	// SchedPriority serves queued demand fetches before any speculation;
	// SchedConfig.Preempt additionally aborts in-flight speculative work.
	SchedPriority = schedsrv.KindPriority
	// SchedWFQ is weighted fair queueing over (client, class) flows.
	SchedWFQ = schedsrv.KindWFQ
	// SchedShaped is per-client token-bucket bandwidth shaping.
	SchedShaped = schedsrv.KindShaped
)

// SchedKinds lists the built-in disciplines in canonical order.
func SchedKinds() []SchedKind { return schedsrv.Kinds() }

// Adaptive speculation control: each multiclient client can run a
// closed-loop λ controller (MultiClientConfig.Adaptive) that observes
// per-round congestion feedback from the shared server and re-prices its
// speculation by solving the §6 cost-aware objective g° − λ·Waste at a λ
// that tracks observed load.
type (
	// ControllerConfig selects and tunes the per-client λ controller.
	ControllerConfig = adaptive.Config
	// ControllerKind names a built-in λ controller.
	ControllerKind = adaptive.Kind
	// Controller maps per-round congestion feedback to the next λ.
	Controller = adaptive.Controller
	// ControllerFeedback is the per-round congestion signal a controller
	// consumes.
	ControllerFeedback = adaptive.Feedback
	// SchedFeedback is the scheduler's point-in-time congestion snapshot
	// the server feeds back to adaptive clients.
	SchedFeedback = schedsrv.Feedback
	// MultiClientControllerPoint aggregates seed replications of one λ
	// controller at a fixed client count and discipline.
	MultiClientControllerPoint = multiclient.ControllerPoint
)

// The built-in λ controllers.
const (
	// ControllerStatic holds λ at Lambda0 — with Lambda0 = 0, the plain
	// SKP planner, bit-for-bit.
	ControllerStatic = adaptive.KindStatic
	// ControllerAIMD backs speculation off multiplicatively on congested
	// rounds and relaxes additively on calm ones.
	ControllerAIMD = adaptive.KindAIMD
	// ControllerTargetUtil integrates the utilisation error against a
	// setpoint.
	ControllerTargetUtil = adaptive.KindTargetUtil
	// ControllerDelayGradient backs off when the client's own demand
	// delay rises round-over-round.
	ControllerDelayGradient = adaptive.KindDelayGradient
)

// ControllerKinds lists the built-in λ controllers in canonical order.
func ControllerKinds() []ControllerKind { return adaptive.Kinds() }

// NewController builds a standalone λ controller. Simulated clients do
// not need this: setting MultiClientConfig.Adaptive equips every client
// with its own instance, validated alongside the rest of the composed
// config. Reach for NewController only to drive a controller directly.
func NewController(cfg ControllerConfig) (Controller, error) { return adaptive.New(cfg) }

// SweepMultiClientControllers runs the identical seed-replicated workload
// under each λ controller, isolating the speculation-control policy:
// demand latency, speculative traffic and the λ trajectory per
// controller.
//
// Legacy wrapper: new code should call SweepMultiClientGrid with
// MultiClientControllerAxis, which composes with the other axes.
func SweepMultiClientControllers(cfg MultiClientConfig, kinds []ControllerKind, reps, workers int) ([]MultiClientControllerPoint, error) {
	return multiclient.SweepControllers(cfg, kinds, reps, workers)
}

// SweepMultiClientDisciplines runs the identical seed-replicated workload
// under each scheduling discipline, isolating the server's arbitration
// policy: demand latency vs speculative throughput per discipline.
//
// Legacy wrapper: new code should call SweepMultiClientGrid with
// MultiClientDisciplineAxis, which composes with the other axes.
func SweepMultiClientDisciplines(cfg MultiClientConfig, kinds []SchedKind, reps, workers int) ([]MultiClientDisciplinePoint, error) {
	return multiclient.SweepDisciplines(cfg, kinds, reps, workers)
}

// Prediction subsystem: the access model each multiclient client plans
// over (MultiClientConfig.Predict) — the paper's presupposed knowledge
// made pluggable, so the oracle-vs-learned gap is a sweepable axis.
type (
	// PredictConfig selects and tunes the prediction source.
	PredictConfig = predict.Config
	// PredictorKind names a built-in prediction source.
	PredictorKind = predict.Kind
	// PredictorFallback selects a learned source's cold-start behaviour.
	PredictorFallback = predict.Fallback
	// PredictorOracleSource answers from a true-distribution hook.
	PredictorOracleSource = predict.Oracle
	// PredictorAggregate is the server-side shared model pooled over all
	// clients' access streams (also the cache-warming popularity model).
	PredictorAggregate = predict.Aggregate
	// MultiClientPredictorPoint aggregates seed replications of one
	// prediction source at a fixed client count.
	MultiClientPredictorPoint = multiclient.PredictorPoint
	// MultiClientPredictorControllerPoint is one cell of the
	// controller×predictor grid, with its Pareto flag.
	MultiClientPredictorControllerPoint = multiclient.PredictorControllerPoint
)

// The built-in prediction sources.
const (
	// PredictorOracle plans over the surfer's true next-page
	// distribution — the default, bit-for-bit the pre-subsystem planner.
	PredictorOracle = predict.KindOracle
	// PredictorDepGraph learns an order-1 dependency graph online from
	// the client's own access stream.
	PredictorDepGraph = predict.KindDepGraph
	// PredictorPPM learns an order-k PPM model online from the client's
	// own access stream (PredictConfig.Order).
	PredictorPPM = predict.KindPPM
	// PredictorShared plans over one server-side model trained on the
	// aggregate access stream of every client.
	PredictorShared = predict.KindShared
	// PredictorDecay learns order-1 transitions with exponentially
	// decayed counts (PredictConfig.HalfLife) — the predictor that
	// re-converges after a non-stationary workload shifts its hot set.
	PredictorDecay = predict.KindDecay
	// PredictorMixture blends order-1 transitions with global page
	// popularity at PredictConfig.MixWeight.
	PredictorMixture = predict.KindMixture
	// PredictorPPMEscape is PPM with escape blending across context
	// orders down to global frequencies — no hard cold-start cliff.
	PredictorPPMEscape = predict.KindPPMEscape
)

// The learned sources' cold-start fallbacks.
const (
	// PredictorFallbackNone predicts nothing on a cold state.
	PredictorFallbackNone = predict.FallbackNone
	// PredictorFallbackUniform predicts uniformly over the pages
	// observed so far.
	PredictorFallbackUniform = predict.FallbackUniform
)

// PredictorKinds lists the built-in prediction sources in canonical order.
func PredictorKinds() []PredictorKind { return predict.Kinds() }

// NewOraclePredictor wraps a true-distribution hook as a Predictor.
func NewOraclePredictor(fn func(state int) map[int]float64) *PredictorOracleSource {
	return predict.NewOracle(fn)
}

// NewPredictorAggregate returns an empty shared aggregate model; obtain
// per-client Predictor views with ForClient.
func NewPredictorAggregate() *PredictorAggregate { return predict.NewAggregate() }

// PredictionL1 returns the L1 distance between two distributions — the
// prediction-error metric the multiclient simulation records per round.
func PredictionL1(p, q map[int]float64) float64 { return predict.L1(p, q) }

// SweepMultiClientPredictors runs the identical seed-replicated workload
// under each prediction source, isolating the oracle-vs-learned gap:
// demand latency, prediction L1 error, wasted-prefetch fraction and hit
// ratio per source.
//
// Legacy wrapper: new code should call SweepMultiClientGrid with
// MultiClientPredictorAxis, which composes with the other axes.
func SweepMultiClientPredictors(cfg MultiClientConfig, kinds []PredictorKind, reps, workers int) ([]MultiClientPredictorPoint, error) {
	return multiclient.SweepPredictors(cfg, kinds, reps, workers)
}

// SweepMultiClientPredictorControllers runs every (controller, predictor)
// pair over the identical seed-replicated workload, controller-major,
// marking each controller's (demand latency, speculative throughput)
// Pareto frontier across predictors.
//
// Legacy wrapper: new code should call SweepMultiClientGrid with
// MultiClientControllerAxis and MultiClientPredictorAxis (only the
// Pareto marking is wrapper-specific).
func SweepMultiClientPredictorControllers(cfg MultiClientConfig, preds []PredictorKind, ctls []ControllerKind, reps, workers int) ([]MultiClientPredictorControllerPoint, error) {
	return multiclient.SweepPredictorControllers(cfg, preds, ctls, reps, workers)
}

// DefaultMultiClientConfig returns a contended but healthy starting point.
func DefaultMultiClientConfig() MultiClientConfig { return multiclient.DefaultConfig() }

// RunMultiClient plays N concurrent sessions against the shared server.
// Identical seeds replay bit-for-bit.
func RunMultiClient(cfg MultiClientConfig) (MultiClientResult, error) { return multiclient.Run(cfg) }

// CompareMultiClient runs cfg with and without prefetching over the
// identical workload and reports the access improvement under contention.
func CompareMultiClient(cfg MultiClientConfig) (MultiClientComparison, error) {
	return multiclient.Compare(cfg)
}

// SweepMultiClient sweeps the client count over ns with seed-replicated
// parallel runs (reps derived seeds per point, sweep worker pool).
//
// Legacy wrapper: new code should call SweepMultiClientGrid with
// MultiClientClientsAxis, which composes with the other axes.
func SweepMultiClient(cfg MultiClientConfig, ns []int, reps, workers int) ([]MultiClientSweepPoint, error) {
	return multiclient.SweepClients(cfg, ns, reps, workers)
}
