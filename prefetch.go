package prefetch

import (
	"prefetch/internal/core"
)

// Core model types, re-exported from the implementation package.
type (
	// Item is a prefetch candidate: identifier, next-access probability
	// P_i, and retrieval time r_i.
	Item = core.Item
	// Problem is one prefetch decision: candidates, viewing time v, and
	// the universe probability mass (see core.Problem.TotalProb).
	Problem = core.Problem
	// Plan is an ordered prefetch list F = K·⟨z⟩.
	Plan = core.Plan
	// SolverStats reports branch-and-bound search effort.
	SolverStats = core.SolverStats
	// Options tunes SolveSKPOpts (delta mode, stretch price, network λ).
	Options = core.Options
	// DeltaMode selects the Theorem-3-correct or literal-Figure-3 stretch
	// penalty (see the DESIGN.md discrepancy note).
	DeltaMode = core.DeltaMode
	// SubArbitration picks among cache victims tied on P·r.
	SubArbitration = core.SubArbitration
	// CacheEntry describes a cached item for arbitration.
	CacheEntry = core.CacheEntry
	// ArbitrationResult pairs admitted prefetches with their victims.
	ArbitrationResult = core.ArbitrationResult
	// WeightedProblem is a successor problem with its reach probability,
	// for the depth-2 lookahead extension.
	WeightedProblem = core.WeightedProblem
	// SizedEntry and SizedCandidate support the non-uniform-size
	// extension of the cache arbitration.
	SizedEntry = core.SizedEntry
	// SizedCandidate is a prefetch candidate with an explicit size.
	SizedCandidate = core.SizedCandidate
	// SizedResult reports the sized arbitration outcome.
	SizedResult = core.SizedResult
)

// Solver and arbitration constants.
const (
	// DeltaTheorem3 prices the stretch per Theorem 3 (exact optimum).
	DeltaTheorem3 = core.DeltaTheorem3
	// DeltaPaperTail transcribes Figure 3 literally.
	DeltaPaperTail = core.DeltaPaperTail
	// SubNone breaks victim ties by lowest ID.
	SubNone = core.SubNone
	// SubLFU breaks victim ties by least frequent use.
	SubLFU = core.SubLFU
	// SubDS breaks victim ties by lowest delay-saving profit freq·r.
	SubDS = core.SubDS
	// NoVictim marks an admission that used a free cache slot.
	NoVictim = core.NoVictim
)

// Errors.
var (
	// ErrBadProblem reports a malformed problem instance.
	ErrBadProblem = core.ErrBadProblem
	// ErrBadPlan reports a plan inconsistent with its problem.
	ErrBadPlan = core.ErrBadPlan
)

// SolveSKP maximises the access improvement g° (Eq. 3) exactly over the
// paper's canonical search space.
func SolveSKP(p Problem) (Plan, SolverStats, error) { return core.SolveSKP(p) }

// SolveSKPPaper runs the literal Figure-3 algorithm (tail δ); its plans can
// carry negative true improvement on stretch-heavy instances.
func SolveSKPPaper(p Problem) (Plan, SolverStats, error) { return core.SolveSKPPaper(p) }

// SolveSKPOpts exposes every solver knob (delta mode, stretch price,
// network-usage λ, bound ablation).
func SolveSKPOpts(p Problem, opts Options) (Plan, SolverStats, error) {
	return core.SolveSKPOpts(p, opts)
}

// SolveSKPExhaustive maximises g° over the unrestricted problem (free
// choice of the stretching item); see the Theorem-1 feasibility-gap note in
// DESIGN.md. Exponential; intended for analysis.
func SolveSKPExhaustive(p Problem) (Plan, float64, error) { return core.SolveSKPExhaustive(p) }

// SolveKP is the classic-knapsack baseline ("KP prefetch"): never
// stretches.
func SolveKP(p Problem) (Plan, error) { return core.SolveKP(p) }

// SolveGreedyPrefetch fills the viewing time greedily in canonical order
// (a cheap, suboptimal baseline for ablations).
func SolveGreedyPrefetch(p Problem) (Plan, error) { return core.SolveGreedyPrefetch(p) }

// SolveSKPStretchAware prices the stretch at an extra cost per unit — the
// depth-2 lookahead surrogate (§4.4/§6).
func SolveSKPStretchAware(p Problem, stretchCost float64) (Plan, SolverStats, error) {
	return core.SolveSKPStretchAware(p, stretchCost)
}

// SolveSKPLookahead derives the stretch price from the successor problems
// (the fast linear surrogate for two-step planning).
func SolveSKPLookahead(p Problem, successors []WeightedProblem) (Plan, SolverStats, error) {
	return core.SolveSKPLookahead(p, successors)
}

// Depth2Stats extends SolverStats with continuation-solve accounting.
type Depth2Stats = core.Depth2Stats

// SolveSKPDepth2 maximises the exact two-step objective: this round's gain
// plus the probability-weighted optimal next-round gain under the stretch
// carried forward (§4.4 intrusion, solved rather than approximated).
func SolveSKPDepth2(p Problem, successors []WeightedProblem) (Plan, Depth2Stats, error) {
	return core.SolveSKPDepth2(p, successors)
}

// Depth2Value evaluates the exact two-step objective of a plan.
func Depth2Value(p Problem, plan Plan, successors []WeightedProblem) (float64, error) {
	return core.Depth2Value(p, plan, successors)
}

// SolveSKPCostAware maximises g° − λ·Waste (network-usage-aware prefetch,
// §6 future work).
func SolveSKPCostAware(p Problem, lambda float64) (Plan, SolverStats, error) {
	return core.SolveSKPCostAware(p, lambda)
}

// Gain evaluates Eq. 3: the expected access improvement of a plan.
func Gain(p Problem, plan Plan) (float64, error) { return core.Gain(p, plan) }

// Explanation is a human-auditable decomposition of a plan's gain.
type Explanation = core.Explanation

// Explain decomposes a plan's gain into per-item contributions, the
// prefetch schedule, and the stretch penalty.
func Explain(p Problem, plan Plan) (Explanation, error) { return core.Explain(p, plan) }

// Improvement computes E[T|no prefetch] − E[T|plan] directly (requires the
// items to cover the whole universe).
func Improvement(p Problem, plan Plan) (float64, error) { return core.Improvement(p, plan) }

// ExpectedNoPrefetch returns E[T | no prefetch] = Σ P_i·r_i.
func ExpectedNoPrefetch(p Problem) float64 { return core.ExpectedNoPrefetch(p) }

// AccessTime returns the realized access time of a request under a plan
// (Fig. 2 of the paper).
func AccessTime(plan Plan, viewing float64, requested int, retrievalOf func(id int) float64) float64 {
	return core.AccessTime(plan, viewing, requested, retrievalOf)
}

// Stretch returns st = max(0, totalRetrieval − viewing) (Eq. 2).
func Stretch(totalRetrieval, viewing float64) float64 { return core.Stretch(totalRetrieval, viewing) }

// UpperBound returns the Theorem-2 / Eq. 7 bound on any plan's improvement.
func UpperBound(p Problem) (float64, error) { return core.UpperBound(p) }

// LinearRelaxation returns the optimal fractional prefetch proportions
// (Theorem 2) with the canonical item order and objective value.
func LinearRelaxation(p Problem) (sorted []Item, x []float64, value float64, err error) {
	return core.LinearRelaxation(p)
}

// Waste returns the expected wasted network time Σ (1−P_i)·r_i of a plan.
func Waste(plan Plan) float64 { return core.Waste(plan) }

// CanonicalOrder sorts items per the paper's condition (5): descending
// probability, ties by ascending retrieval time.
func CanonicalOrder(items []Item) []Item { return core.CanonicalOrder(items) }

// GainWithCache evaluates Eq. 9: the improvement of prefetching plan F
// while ejecting D from the cache.
func GainWithCache(p Problem, plan Plan, cached, eject []int) (float64, error) {
	return core.GainWithCache(p, plan, cached, eject)
}

// ExpectedNoPrefetchCached returns E[T | no prefetch] given cache contents.
func ExpectedNoPrefetchCached(p Problem, cached []int) float64 {
	return core.ExpectedNoPrefetchCached(p, cached)
}

// Arbitrate admits prefetch candidates against the cache per Figure 6
// (Pr-arbitration with optional LFU/DS sub-arbitration).
func Arbitrate(candidate Plan, cacheEntries []CacheEntry, freeSlots int, sub SubArbitration) ArbitrationResult {
	return core.Arbitrate(candidate, cacheEntries, freeSlots, sub)
}

// DemandVictim picks the mandatory victim for a demand-fetched item.
func DemandVictim(cacheEntries []CacheEntry, sub SubArbitration) (int, bool) {
	return core.DemandVictim(cacheEntries, sub)
}

// ArbitrateSized is the non-uniform-item-size extension of Arbitrate.
func ArbitrateSized(candidates []SizedCandidate, cacheEntries []SizedEntry, freeBytes int64, sub SubArbitration) (SizedResult, error) {
	return core.ArbitrateSized(candidates, cacheEntries, freeBytes, sub)
}
