package prefetch

import (
	"prefetch/internal/fleet"
	"prefetch/internal/multiclient"
)

// Multi-server fleet simulation: R replicas, each a full
// scheduling-arbitrated, cache-equipped server, behind a pluggable
// request router, with deterministic replica fail/recover injection.
// FleetConfig composes the whole stack: the embedded Base is a complete
// MultiClientConfig (with its nested Sched, Adaptive and Predict
// sections), and the fleet section adds replica count, router and
// failure regime — one Validate covers it all.
type (
	// FleetConfig parameterises RunFleet.
	FleetConfig = fleet.Config
	// FleetResult aggregates one fleet run, including availability and
	// re-routing metrics.
	FleetResult = fleet.Result
	// FleetReplicaResult is one replica's view of the run.
	FleetReplicaResult = fleet.ReplicaResult
	// FleetRouterKind names a built-in request router.
	FleetRouterKind = fleet.Kind
	// FleetRouter is the pluggable request-placement interface.
	FleetRouter = fleet.Router
	// FleetReplicaState is one replica's routing-time state.
	FleetReplicaState = fleet.ReplicaState
	// FleetPoint is one cell of a fleet sweep.
	FleetPoint = fleet.Point
	// FleetAxis is one swept dimension of a fleet configuration.
	FleetAxis = fleet.Axis
)

// The built-in request routers.
const (
	// RouterRoundRobin cycles requests over the live replicas.
	RouterRoundRobin = fleet.KindRoundRobin
	// RouterLeastLoaded sends each request to the live replica with the
	// smallest backlog, fed by scheduler feedback.
	RouterLeastLoaded = fleet.KindLeastLoaded
	// RouterHash pins each client to a home replica on a consistent-hash
	// ring, so per-replica predictors and caches specialise.
	RouterHash = fleet.KindHash
)

// RouterKinds lists the built-in request routers in canonical order.
func RouterKinds() []FleetRouterKind { return fleet.Kinds() }

// NewFleetRouter builds the named router for a fleet of the given size.
func NewFleetRouter(kind FleetRouterKind, replicas int) (FleetRouter, error) {
	return fleet.NewRouter(kind, replicas)
}

// DefaultFleetConfig returns the multiclient default spread over three
// replicas with affinity routing and no failures.
func DefaultFleetConfig() FleetConfig { return fleet.DefaultConfig() }

// RunFleet plays N concurrent sessions against an R-replica fleet.
// Identical seeds replay bit-for-bit; a one-replica fleet without
// failures reproduces RunMultiClient exactly.
func RunFleet(cfg FleetConfig) (FleetResult, error) { return fleet.Run(cfg) }

// SweepFleet runs the cross product of fleet axes (FleetRouterAxis,
// FleetReplicasAxis, FleetFailEveryAxis) over the base config with seed
// replications, on the generic grid engine.
func SweepFleet(cfg FleetConfig, reps, workers int, axes ...FleetAxis) ([]FleetPoint, error) {
	return fleet.Sweep(cfg, reps, workers, axes...)
}

// SweepFleetRouters is the fleet's headline experiment: router kind ×
// replica count under the configured failure regime, router-major.
func SweepFleetRouters(cfg FleetConfig, routers []FleetRouterKind, replicas []int, reps, workers int) ([]FleetPoint, error) {
	return fleet.SweepRouters(cfg, routers, replicas, reps, workers)
}

// FleetRouterAxis sweeps the routing policy.
func FleetRouterAxis(kinds []FleetRouterKind) FleetAxis { return fleet.RouterAxis(kinds) }

// FleetReplicasAxis sweeps the fleet size.
func FleetReplicasAxis(ns []int) (FleetAxis, error) { return fleet.ReplicasAxis(ns) }

// FleetFailEveryAxis sweeps the failure rate (0 disables injection).
func FleetFailEveryAxis(means []float64) (FleetAxis, error) { return fleet.FailEveryAxis(means) }

// Unified sweep surface for the single-server model: every multiclient
// sweep is one generic axis-based engine (internal/sweep.Grid), and the
// per-axis entry points (SweepMultiClient, SweepMultiClientDisciplines,
// SweepMultiClientControllers, SweepMultiClientPredictors,
// SweepMultiClientPredictorControllers) are legacy wrappers over it.
type (
	// MultiClientAxis is one swept dimension of a MultiClientConfig.
	MultiClientAxis = multiclient.Axis
	// MultiClientAxisValue is one labelled setting on an axis.
	MultiClientAxisValue = multiclient.AxisValue
	// MultiClientPoint is one cell of a generic multiclient sweep.
	MultiClientPoint = multiclient.Point
)

// SweepMultiClientGrid runs the cross product of axes over the base
// config, reps seed replications per cell (rep r runs at Seed+r), on up
// to workers goroutines. Cells come back row-major — the first axis
// varies slowest — and are deterministic regardless of worker count.
// With baseline true every cell also runs the no-prefetch control and
// records the access improvement.
func SweepMultiClientGrid(cfg MultiClientConfig, reps, workers int, baseline bool, axes ...MultiClientAxis) ([]MultiClientPoint, error) {
	return multiclient.Sweep(cfg, reps, workers, baseline, axes...)
}

// MultiClientClientsAxis sweeps the client count.
func MultiClientClientsAxis(ns []int) (MultiClientAxis, error) { return multiclient.ClientsAxis(ns) }

// MultiClientDisciplineAxis sweeps the server scheduling discipline.
func MultiClientDisciplineAxis(kinds []SchedKind) MultiClientAxis {
	return multiclient.DisciplineAxis(kinds)
}

// MultiClientControllerAxis sweeps the per-client λ controller.
func MultiClientControllerAxis(kinds []ControllerKind) MultiClientAxis {
	return multiclient.ControllerAxis(kinds)
}

// MultiClientPredictorAxis sweeps the prediction source.
func MultiClientPredictorAxis(kinds []PredictorKind) MultiClientAxis {
	return multiclient.PredictorAxis(kinds)
}
