package prefetch

import (
	"io"

	"prefetch/internal/obs"
)

// Observability types, re-exported so library users can capture, query
// and export the decision trace of any simulation (see internal/obs for
// the event taxonomy and the determinism guarantees).
type (
	// Tracer receives the typed decision-trace events of a run. The
	// disabled state is a nil Tracer: instrumented hot paths guard every
	// emission with a nil check, so tracing costs one branch when off.
	Tracer = obs.Tracer
	// TraceEvent is one decision-trace event: a flat union stamped with
	// the simulated clock whose Kind determines which fields apply.
	TraceEvent = obs.Event
	// TraceKind names an event type (round_start, spec_wasted, …).
	TraceKind = obs.Kind
	// TraceCollector is a Tracer buffering events in memory, for tests
	// and in-process analysis.
	TraceCollector = obs.Collector
	// TraceWriter is a Tracer streaming events as JSON lines.
	TraceWriter = obs.Writer
	// MetricsRegistry aggregates counters, gauges and histograms with
	// deterministic (sorted) export; Accumulate folds a decision trace
	// into run metrics.
	MetricsRegistry = obs.Registry
)

// NewTraceWriter returns a Tracer that streams events to w as JSON
// lines. Call Flush before reading what was written.
func NewTraceWriter(w io.Writer) *TraceWriter { return obs.NewWriter(w) }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// ReadDecisionTrace reads a JSONL decision trace (as written by
// TraceWriter or prefetchsim -trace-out) and validates every event.
// Decoding is strict: unknown fields, blank lines and truncated final
// lines are errors naming the offending line.
func ReadDecisionTrace(r io.Reader) ([]TraceEvent, error) { return obs.ReadTrace(r) }

// WriteChromeTrace converts a decision trace into the Chrome
// trace-event format that Perfetto (https://ui.perfetto.dev) and
// chrome://tracing open directly: per-client round spans, async
// transfer spans (with preemption), λ and queue-depth counter tracks,
// and instants for drops, hits and wasted speculations.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	return obs.WriteChromeTrace(w, events)
}
