package prefetch_test

import (
	"math"
	"testing"

	"prefetch"
)

// The facade is exercised exactly as an external user would use it.

func exampleProblem() prefetch.Problem {
	return prefetch.Problem{
		Items: []prefetch.Item{
			{ID: 1, Prob: 0.6, Retrieval: 4},
			{ID: 2, Prob: 0.3, Retrieval: 5},
			{ID: 3, Prob: 0.1, Retrieval: 2},
		},
		Viewing: 6,
	}
}

func TestQuickstartFlow(t *testing.T) {
	problem := exampleProblem()
	plan, stats, err := prefetch.SolveSKP(problem)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Nodes == 0 {
		t.Fatal("solver reported no work")
	}
	ids := plan.IDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("plan = %v, want [1 2]", ids)
	}
	g, err := prefetch.Gain(problem, plan)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-2.7) > 1e-12 {
		t.Fatalf("gain = %v, want 2.7", g)
	}
	imp, err := prefetch.Improvement(problem, plan)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(imp-g) > 1e-9 {
		t.Fatalf("Improvement %v != Gain %v", imp, g)
	}
	u, err := prefetch.UpperBound(problem)
	if err != nil {
		t.Fatal(err)
	}
	if g > u+1e-9 {
		t.Fatalf("gain %v exceeds bound %v", g, u)
	}
}

func TestFacadeSolverVariants(t *testing.T) {
	problem := exampleProblem()
	if _, _, err := prefetch.SolveSKPPaper(problem); err != nil {
		t.Fatal(err)
	}
	if _, err := prefetch.SolveKP(problem); err != nil {
		t.Fatal(err)
	}
	if _, _, err := prefetch.SolveSKPCostAware(problem, 0.3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := prefetch.SolveSKPStretchAware(problem, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := prefetch.SolveSKPOpts(problem, prefetch.Options{Mode: prefetch.DeltaPaperTail}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := prefetch.SolveSKPExhaustive(problem); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeModelHelpers(t *testing.T) {
	problem := exampleProblem()
	if e := prefetch.ExpectedNoPrefetch(problem); math.Abs(e-(0.6*4+0.3*5+0.1*2)) > 1e-12 {
		t.Fatalf("ExpectedNoPrefetch = %v", e)
	}
	if prefetch.Stretch(10, 6) != 4 {
		t.Fatal("Stretch wrong")
	}
	sorted := prefetch.CanonicalOrder(problem.Items)
	if sorted[0].ID != 1 {
		t.Fatal("CanonicalOrder wrong")
	}
	plan, _, err := prefetch.SolveSKP(problem)
	if err != nil {
		t.Fatal(err)
	}
	if w := prefetch.Waste(plan); w <= 0 {
		t.Fatalf("Waste = %v", w)
	}
	T := prefetch.AccessTime(plan, problem.Viewing, 3, func(int) float64 { return 2 })
	if math.Abs(T-5) > 1e-12 { // st = 3, r = 2
		t.Fatalf("AccessTime = %v, want 5", T)
	}
	_, x, _, err := prefetch.LinearRelaxation(problem)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 1 {
		t.Fatalf("relaxation x = %v", x)
	}
}

func TestFacadeCacheIntegration(t *testing.T) {
	problem := prefetch.Problem{
		Items: []prefetch.Item{
			{ID: 1, Prob: 0.5, Retrieval: 6},
			{ID: 2, Prob: 0.3, Retrieval: 4},
			{ID: 3, Prob: 0.2, Retrieval: 9},
		},
		Viewing: 10,
	}
	sub := prefetch.Problem{
		Items:     []prefetch.Item{problem.Items[0], problem.Items[1]},
		Viewing:   10,
		TotalProb: 1,
	}
	plan, _, err := prefetch.SolveSKP(sub)
	if err != nil {
		t.Fatal(err)
	}
	entries := []prefetch.CacheEntry{{ID: 3, Prob: 0.2, Retrieval: 9, Freq: 2}}
	res := prefetch.Arbitrate(plan, entries, 0, prefetch.SubDS)
	if res.Accepted.Len() == 0 {
		t.Fatal("nothing admitted")
	}
	g, err := prefetch.GainWithCache(problem, res.Accepted, []int{3}, res.Ejected())
	if err != nil {
		t.Fatal(err)
	}
	if g <= 0 {
		t.Fatalf("cache-integrated gain = %v", g)
	}
	if e := prefetch.ExpectedNoPrefetchCached(problem, []int{3}); math.Abs(e-(0.5*6+0.3*4)) > 1e-12 {
		t.Fatalf("ExpectedNoPrefetchCached = %v", e)
	}
	if _, ok := prefetch.DemandVictim(entries, prefetch.SubNone); !ok {
		t.Fatal("no demand victim")
	}
	sized, err := prefetch.ArbitrateSized(
		[]prefetch.SizedCandidate{{Item: problem.Items[0], Size: 2}},
		[]prefetch.SizedEntry{{CacheEntry: entries[0], Size: 3}},
		0, prefetch.SubNone)
	if err != nil {
		t.Fatal(err)
	}
	if len(sized.Accepted) != 1 {
		t.Fatal("sized arbitration rejected a worthy candidate")
	}
}

func TestFacadeSimulation(t *testing.T) {
	r := prefetch.NewRand(7)
	src, err := prefetch.NewRandomRounds(r, prefetch.Fig45Config(10, prefetch.SkewyGen{}), 300)
	if err != nil {
		t.Fatal(err)
	}
	rounds := prefetch.CollectRounds(src)
	results, err := prefetch.RunPrefetchOnly(rounds,
		[]prefetch.Policy{prefetch.NoPrefetch{}, prefetch.SKPPolicy{}, prefetch.PerfectPolicy{}},
		prefetch.PrefetchOnlyOptions{ScatterLimit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	if results[1].Overall.Mean() >= results[0].Overall.Mean() {
		t.Fatal("SKP not better than no-prefetch on skewy workload")
	}

	trace, err := prefetch.BuildMarkovTrace(r, prefetch.MarkovConfig{
		States: 20, MinOut: 3, MaxOut: 6, MinViewing: 1, MaxViewing: 30,
	}, 1, 30, 500)
	if err != nil {
		t.Fatal(err)
	}
	for _, planner := range prefetch.Fig7Planners(prefetch.DeltaTheorem3) {
		res, err := prefetch.RunPrefetchCache(trace, planner, 8)
		if err != nil {
			t.Fatal(err)
		}
		if res.Requests != 500 {
			t.Fatalf("%s: %d requests", planner.Label, res.Requests)
		}
	}
}

func TestFacadePredictors(t *testing.T) {
	// DependencyGraph, PPM, the oracle and the shared aggregate's client
	// views all satisfy the single public Predictor interface.
	var preds []prefetch.Predictor
	d := prefetch.NewDependencyGraph()
	preds = append(preds, d)
	p, err := prefetch.NewPPM(2)
	if err != nil {
		t.Fatal(err)
	}
	preds = append(preds, p)
	preds = append(preds, prefetch.NewOraclePredictor(func(int) map[int]float64 {
		return map[int]float64{2: 1}
	}))
	preds = append(preds, prefetch.NewPredictorAggregate().ForClient(0))
	for _, pr := range preds {
		pr.Observe(1)
		pr.Observe(2)
		pr.Observe(1)
		if len(pr.Next(1)) == 0 {
			t.Errorf("%s predicts nothing after observing 1,2,1", pr.Name())
		}
	}
	if len(d.Predict()) == 0 || len(p.Predict()) == 0 {
		t.Fatal("internal-context Predict() broke")
	}
	if got := prefetch.PredictionL1(d.Next(1), map[int]float64{2: 1}); got != 0 {
		t.Errorf("depgraph after 1→2 observations: L1 vs {2:1} = %v, want 0", got)
	}
	if kinds := prefetch.PredictorKinds(); len(kinds) != 7 || kinds[0] != prefetch.PredictorOracle ||
		kinds[4] != prefetch.PredictorDecay || kinds[5] != prefetch.PredictorMixture ||
		kinds[6] != prefetch.PredictorPPMEscape {
		t.Errorf("PredictorKinds() = %v", kinds)
	}
}

func TestFacadeErrors(t *testing.T) {
	bad := prefetch.Problem{Items: []prefetch.Item{{ID: 1, Prob: 2, Retrieval: 1}}, Viewing: 1}
	if _, _, err := prefetch.SolveSKP(bad); err == nil {
		t.Fatal("invalid problem accepted")
	}
}
