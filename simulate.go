package prefetch

import (
	"prefetch/internal/access"
	"prefetch/internal/predict"
	"prefetch/internal/rng"
	"prefetch/internal/sim"
	"prefetch/internal/workload"
)

// Simulation and workload types, re-exported so library users can rerun
// the paper's experiments and build their own.
type (
	// Rand is the deterministic random source every generator consumes.
	Rand = rng.Source
	// Round is one prefetch decision situation of the prefetch-only
	// simulation (probabilities, retrievals, viewing time, request).
	Round = workload.Round
	// PrefetchOnlyConfig parameterises the §4.4 workload.
	PrefetchOnlyConfig = workload.PrefetchOnlyConfig
	// RoundSource yields rounds (random or replayed from a trace).
	RoundSource = workload.Source
	// Policy decides what to prefetch for a round.
	Policy = sim.Policy
	// PrefetchOnlyOptions tunes the §4.4 harness.
	PrefetchOnlyOptions = sim.PrefetchOnlyOptions
	// PrefetchOnlyResult aggregates one policy's prefetch-only run.
	PrefetchOnlyResult = sim.PrefetchOnlyResult
	// ScatterPoint is one (v, T) observation (Fig. 4).
	ScatterPoint = sim.ScatterPoint
	// MarkovTrace is a pre-drawn Markov walk (Fig. 7 workload).
	MarkovTrace = sim.MarkovTrace
	// CachePlanner combines a prefetch solver with a sub-arbitration.
	CachePlanner = sim.CachePlanner
	// CacheOptions tunes the §5.3 harness (decision tracing).
	CacheOptions = sim.CacheOptions
	// CacheResult aggregates one prefetch-cache run.
	CacheResult = sim.CacheResult
	// MarkovConfig parameterises the request source of Fig. 7.
	MarkovConfig = access.MarkovConfig
	// MarkovSource is an n-state Markov request generator.
	MarkovSource = access.MarkovSource
	// ProbGen generates next-access probability vectors.
	ProbGen = access.ProbGen
	// FlatGen is the paper's flat method (unpredictable next access).
	FlatGen = access.FlatGen
	// SkewyGen is the paper's skewy method (highly predictable).
	SkewyGen = access.SkewyGen
	// ZipfGen produces Zipf-profile probabilities.
	ZipfGen = access.ZipfGen
	// GeometricGen produces geometric-profile probabilities.
	GeometricGen = access.GeometricGen
	// Predictor is THE predictor interface of the public API — the
	// prediction subsystem's Source (internal/predict): Observe feeds an
	// access stream, Next(state) returns the predicted distribution of
	// the following access. DependencyGraph, PPM, the oracle and the
	// shared aggregate model all implement it, and the multiclient
	// simulation plans over it (MultiClientConfig.Predict).
	Predictor = predict.Source
	// DependencyGraph is an order-1 transition-count predictor.
	DependencyGraph = access.DependencyGraph
	// PPM is an order-k prediction-by-partial-matching predictor.
	PPM = access.PPM
)

// Simulation policies.
type (
	// NoPrefetch never prefetches.
	NoPrefetch = sim.NoPrefetch
	// SKPPolicy prefetches the stretch-knapsack solution.
	SKPPolicy = sim.SKPPolicy
	// KPPolicy prefetches the classic-knapsack solution.
	KPPolicy = sim.KPPolicy
	// GreedyPolicy prefetches the density-greedy fill.
	GreedyPolicy = sim.GreedyPolicy
	// PerfectPolicy is the oracle (always fetches the true next item).
	PerfectPolicy = sim.PerfectPolicy
	// StretchAwarePolicy prices the stretch at a fixed cost.
	StretchAwarePolicy = sim.StretchAwarePolicy
	// CostAwarePolicy trades improvement against network usage.
	CostAwarePolicy = sim.CostAwarePolicy
)

// NewRand returns a deterministic random source; identical seeds give
// identical experiment runs across platforms and Go releases.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// NewRandomRounds returns a source of `count` random rounds under cfg.
func NewRandomRounds(r *Rand, cfg PrefetchOnlyConfig, count int) (RoundSource, error) {
	return workload.NewRandomSource(r, cfg, count)
}

// Fig45Config returns the paper's Figure-4/5 workload parameters.
func Fig45Config(n int, gen ProbGen) PrefetchOnlyConfig { return workload.Fig45Config(n, gen) }

// CollectRounds drains a source into a slice.
func CollectRounds(src RoundSource) []Round { return workload.Collect(src) }

// RunPrefetchOnly plays every round through every policy (§4.4 harness).
func RunPrefetchOnly(rounds []Round, policies []Policy, opts PrefetchOnlyOptions) ([]PrefetchOnlyResult, error) {
	return sim.RunPrefetchOnly(rounds, policies, opts)
}

// Fig7MarkovConfig returns the paper's Figure-7 source parameters
// (100 states, out-degree 10–20, viewing times 1–100).
func Fig7MarkovConfig() MarkovConfig { return access.Fig7MarkovConfig() }

// BuildMarkovTrace draws the Fig. 7 workload: a Markov source, per-item
// retrieval times in [rMin, rMax], and a pre-drawn walk.
func BuildMarkovTrace(r *Rand, cfg MarkovConfig, rMin, rMax, requests int) (*MarkovTrace, error) {
	return sim.BuildMarkovTrace(r, cfg, rMin, rMax, requests)
}

// Fig7Planners returns the paper's five prefetch-cache policies.
func Fig7Planners(mode DeltaMode) []CachePlanner { return sim.Fig7Planners(mode) }

// RunPrefetchCache replays a Markov trace under one planner and cache size
// (§5.3 harness).
func RunPrefetchCache(trace *MarkovTrace, planner CachePlanner, cacheSize int) (CacheResult, error) {
	return sim.RunPrefetchCache(trace, planner, cacheSize)
}

// RunPrefetchCacheOpts is RunPrefetchCache with harness options (a
// decision Tracer and the track id its events carry).
func RunPrefetchCacheOpts(trace *MarkovTrace, planner CachePlanner, cacheSize int, opts CacheOptions) (CacheResult, error) {
	return sim.RunPrefetchCacheOpts(trace, planner, cacheSize, opts)
}

// NewDependencyGraph returns an empty order-1 predictor.
func NewDependencyGraph() *DependencyGraph { return access.NewDependencyGraph() }

// NewPPM returns an order-k PPM predictor.
func NewPPM(order int) (*PPM, error) { return access.NewPPM(order) }
