// Command simlint runs the repository's determinism and config-hygiene
// analyzers (internal/lint) over the packages matching the given
// patterns, in the spirit of a go/analysis multichecker:
//
//	simlint ./...                 # run every analyzer
//	simlint -only detrand,maporder ./internal/...
//	simlint -list                 # print the suite and exit
//	simlint -show-allowed ./...   # audit suppressed findings too
//
// Diagnostics print as file:line:col: message [analyzer], sorted by
// position; the exit status is 1 when any unsuppressed diagnostic is
// found, 2 on usage or load errors. Findings are suppressed with a
// justified directive on the flagged line or the line above:
//
//	//lint:allow <analyzer> <reason>
//
// See `make lint`, which builds this command and runs it over ./....
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"prefetch/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		only        = fs.String("only", "", "comma-separated analyzer names to run (default: all)")
		list        = fs.Bool("list", false, "list the analyzers in the suite and exit")
		showAllowed = fs.Bool("show-allowed", false, "also print findings suppressed by //lint:allow directives")
		dir         = fs.String("C", ".", "change to this directory before resolving package patterns")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: simlint [flags] [package patterns]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := lint.All()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = suite[:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "simlint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			suite = append(suite, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadPackages(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}
	diags, err := lint.RunAnalyzers(pkgs, suite)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}

	bad := 0
	for _, d := range diags {
		if d.Suppressed {
			if *showAllowed {
				fmt.Fprintf(stdout, "%s: allowed (%s): %s [%s]\n", d.Pos, d.AllowReason, d.Message, d.Analyzer)
			}
			continue
		}
		bad++
		fmt.Fprintf(stdout, "%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "simlint: %d finding(s)\n", bad)
		return 1
	}
	return 0
}
