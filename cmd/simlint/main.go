// Command simlint runs the repository's determinism and config-hygiene
// analyzers (internal/lint) over the packages matching the given
// patterns, in the spirit of a go/analysis multichecker:
//
//	simlint ./...                 # run every analyzer
//	simlint -only detrand,maporder ./internal/...
//	simlint -list                 # print the suite and exit
//	simlint -show-allowed ./...   # audit suppressed findings too
//	simlint -json ./...           # one JSON object per diagnostic line
//
// Diagnostics print as file:line:col: message [analyzer], sorted by
// position, with file paths relative to the -C directory so output is
// stable across checkouts (CI diffs -show-allowed output against the
// committed lint-allows.txt, and the GitHub Actions problem matcher
// annotates PR diffs from the same format). With -json each diagnostic
// is one JSON object per line: {"file":...,"line":...,"col":...,
// "analyzer":...,"message":...} plus "allowed" and "reason" for
// suppressed findings under -show-allowed. The exit status is 1 when
// any unsuppressed diagnostic is found, 2 on usage or load errors.
// Findings are suppressed with a justified directive on the flagged
// line or the line above:
//
//	//lint:allow <analyzer> <reason>
//
// See `make lint`, which builds this command and runs it over ./....
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"prefetch/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		only        = fs.String("only", "", "comma-separated analyzer names to run (default: all)")
		list        = fs.Bool("list", false, "list the analyzers in the suite and exit")
		showAllowed = fs.Bool("show-allowed", false, "also print findings suppressed by //lint:allow directives")
		asJSON      = fs.Bool("json", false, "emit one JSON object per diagnostic line instead of text")
		dir         = fs.String("C", ".", "change to this directory before resolving package patterns")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: simlint [flags] [package patterns]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := lint.All()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		var valid []string
		for _, a := range suite {
			byName[a.Name] = a
			valid = append(valid, a.Name)
		}
		suite = suite[:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "simlint: unknown analyzer %q; valid analyzers: %s\n",
					name, strings.Join(valid, ", "))
				return 2
			}
			suite = append(suite, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadPackages(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}
	diags, err := lint.RunAnalyzers(pkgs, suite)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}

	// Paths come out of the loader absolute; report them relative to the
	// -C directory so the output is identical on every checkout.
	absDir, err := filepath.Abs(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}

	bad := 0
	enc := json.NewEncoder(stdout)
	for _, d := range diags {
		if d.Suppressed && !*showAllowed {
			continue
		}
		if !d.Suppressed {
			bad++
		}
		file := relPath(absDir, d.Pos.Filename)
		if *asJSON {
			if err := enc.Encode(jsonDiag{
				File:     file,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Allowed:  d.Suppressed,
				Reason:   d.AllowReason,
			}); err != nil {
				fmt.Fprintf(stderr, "simlint: %v\n", err)
				return 2
			}
			continue
		}
		if d.Suppressed {
			fmt.Fprintf(stdout, "%s:%d:%d: allowed (%s): %s [%s]\n",
				file, d.Pos.Line, d.Pos.Column, d.AllowReason, d.Message, d.Analyzer)
		} else {
			fmt.Fprintf(stdout, "%s:%d:%d: %s [%s]\n",
				file, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
		}
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "simlint: %d finding(s)\n", bad)
		return 1
	}
	return 0
}

// jsonDiag is the machine-readable diagnostic shape, one object per
// output line.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Allowed  bool   `json:"allowed,omitempty"`
	Reason   string `json:"reason,omitempty"`
}

// relPath rewrites an absolute diagnostic path relative to base,
// forward-slashed; paths outside base (or already relative) are
// returned unchanged.
func relPath(base, file string) string {
	if !filepath.IsAbs(file) {
		return file
	}
	rel, err := filepath.Rel(base, file)
	if err != nil || strings.HasPrefix(rel, "..") {
		return file
	}
	return filepath.ToSlash(rel)
}
