package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"sort"
	"strings"
	"testing"
)

// TestMain lets the test binary impersonate the real simlint process
// when re-exec'd with SIMLINT_BE_MAIN=1, so tests can assert on the
// actual process exit status rather than only on run()'s return value.
func TestMain(m *testing.M) {
	if os.Getenv("SIMLINT_BE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// execSelf re-execs the test binary as simlint and returns its output
// and exit status.
func execSelf(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "SIMLINT_BE_MAIN=1")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	var ee *exec.ExitError
	switch {
	case err == nil:
	case errors.As(err, &ee):
		code = ee.ExitCode()
	default:
		t.Fatalf("re-exec %v: %v", args, err)
	}
	return out.String(), errb.String(), code
}

var suiteNames = []string{
	"detrand", "floatdet", "maporder", "obskind", "poolreuse",
	"rnglabel", "shardpure", "snapshotmut", "validatecfg",
}

func TestListPrintsSuite(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, errb.String())
	}
	for _, name := range suiteNames {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzerRejected(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-only", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("run(-only nosuch) = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr = %q, want unknown-analyzer message", errb.String())
	}
}

// TestExitStatusUnknownAnalyzer asserts on the real process contract:
// exit 2, and the error names every valid analyzer so the user never
// needs a second -list invocation.
func TestExitStatusUnknownAnalyzer(t *testing.T) {
	_, stderr, code := execSelf(t, "-only", "nosuch")
	if code != 2 {
		t.Fatalf("exit = %d, want 2\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, `unknown analyzer "nosuch"`) {
		t.Errorf("stderr = %q, want unknown-analyzer message", stderr)
	}
	for _, name := range suiteNames {
		if !strings.Contains(stderr, name) {
			t.Errorf("stderr does not list valid analyzer %q:\n%s", name, stderr)
		}
	}
}

// TestExitStatusListSorted pins -list as sorted and stable: two runs
// must agree byte for byte and present analyzers in name order, so the
// output is diffable and the registry ordering can't silently regress.
func TestExitStatusListSorted(t *testing.T) {
	out1, stderr, code := execSelf(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr: %s", code, stderr)
	}
	out2, _, _ := execSelf(t, "-list")
	if out1 != out2 {
		t.Errorf("-list output not stable across runs:\n%s\nvs\n%s", out1, out2)
	}
	var names []string
	for _, line := range strings.Split(strings.TrimSpace(out1), "\n") {
		names = append(names, strings.Fields(line)[0])
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("-list analyzers not sorted: %v", names)
	}
	if len(names) != len(suiteNames) {
		t.Errorf("-list printed %d analyzers, want %d: %v", len(names), len(suiteNames), names)
	}
}

// TestFlagsFixturePackage runs the real driver end to end over the
// detrand fixture (loaded as a module package by explicit path, which
// bypasses go list's testdata pruning) and expects findings and exit 1.
func TestFlagsFixturePackage(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-C", "../..",
		"-only", "detrand",
		"./internal/lint/testdata/src/detrand/internal/eventq",
	}, &out, &errb)
	if code != 1 {
		t.Fatalf("run over bad fixture = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "[detrand]") {
		t.Errorf("missing detrand findings in output:\n%s", out.String())
	}
	// Diagnostic paths are relative to the -C directory, never absolute:
	// the problem matcher and the committed allow inventory depend on it.
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if strings.HasPrefix(line, "/") {
			t.Errorf("diagnostic path not relative to -C dir: %s", line)
		}
	}
}

// TestJSONDiagnostics checks the -json stream: one parseable object per
// line carrying the same positions the text format prints.
func TestJSONDiagnostics(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-C", "../..",
		"-json",
		"-only", "detrand",
		"./internal/lint/testdata/src/detrand/internal/eventq",
	}, &out, &errb)
	if code != 1 {
		t.Fatalf("run -json over bad fixture = %d, want 1\nstderr: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("no JSON diagnostics emitted")
	}
	for _, line := range lines {
		var d jsonDiag
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("line is not valid JSON: %q: %v", line, err)
		}
		if d.File == "" || d.Line <= 0 || d.Col <= 0 || d.Analyzer != "detrand" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		if strings.HasPrefix(d.File, "/") {
			t.Errorf("JSON diagnostic path not relative: %s", d.File)
		}
	}
}

// TestRepoIsClean is the enforcement test: the shipped tree must stay
// simlint-clean, so a violation fails `go test ./...` (and therefore
// `make test` and CI), not just the dedicated lint job.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole tree; skipped in -short mode")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-C", "../..", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("simlint found violations (exit %d):\n%s%s", code, out.String(), errb.String())
	}
}
