package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListPrintsSuite(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"detrand", "maporder", "validatecfg", "floatdet"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzerRejected(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-only", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("run(-only nosuch) = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr = %q, want unknown-analyzer message", errb.String())
	}
}

// TestFlagsFixturePackage runs the real driver end to end over the
// detrand fixture (loaded as a module package by explicit path, which
// bypasses go list's testdata pruning) and expects findings and exit 1.
func TestFlagsFixturePackage(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-C", "../..",
		"-only", "detrand",
		"./internal/lint/testdata/src/detrand/internal/eventq",
	}, &out, &errb)
	if code != 1 {
		t.Fatalf("run over bad fixture = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "[detrand]") {
		t.Errorf("missing detrand findings in output:\n%s", out.String())
	}
}

// TestRepoIsClean is the enforcement test: the shipped tree must stay
// simlint-clean, so a violation fails `go test ./...` (and therefore
// `make test` and CI), not just the dedicated lint job.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole tree; skipped in -short mode")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-C", "../..", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("simlint found violations (exit %d):\n%s%s", code, out.String(), errb.String())
	}
}
