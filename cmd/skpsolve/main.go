// Command skpsolve solves a single prefetch decision problem from JSON and
// prints the chosen plan, its expected access improvement, and the
// Theorem-2 upper bound.
//
// Input format (stdin, or a file via -f):
//
//	{
//	  "viewing": 6,
//	  "items": [
//	    {"id": 1, "prob": 0.6, "retrieval": 4},
//	    {"id": 2, "prob": 0.3, "retrieval": 5},
//	    {"id": 3, "prob": 0.1, "retrieval": 2}
//	  ]
//	}
//
// Example:
//
//	skpsolve -algo skp < problem.json
//	skpsolve -algo kp -json < problem.json
//	skpsolve -algo costaware -lambda 0.5 < problem.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"prefetch"
)

type jsonItem struct {
	ID        int     `json:"id"`
	Prob      float64 `json:"prob"`
	Retrieval float64 `json:"retrieval"`
}

type jsonProblem struct {
	Viewing   float64    `json:"viewing"`
	TotalProb float64    `json:"total_prob,omitempty"`
	Items     []jsonItem `json:"items"`
}

type jsonOutput struct {
	Algorithm  string  `json:"algorithm"`
	PlanIDs    []int   `json:"plan"`
	Gain       float64 `json:"gain"`
	Stretch    float64 `json:"stretch"`
	Waste      float64 `json:"waste"`
	UpperBound float64 `json:"upper_bound"`
	Nodes      int64   `json:"nodes,omitempty"`
	Prunes     int64   `json:"prunes,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "skpsolve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algo    = flag.String("algo", "skp", "algorithm: skp | skp-paper | kp | greedy | exhaustive | costaware | stretchaware")
		lambda  = flag.Float64("lambda", 0, "network-usage price for -algo costaware")
		stretch = flag.Float64("stretchcost", 0, "stretch price for -algo stretchaware")
		file    = flag.String("f", "", "input file (default stdin)")
		asJSON  = flag.Bool("json", false, "emit JSON instead of text")
		explain = flag.Bool("explain", false, "print the per-item gain decomposition")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	var jp jsonProblem
	dec := json.NewDecoder(in)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jp); err != nil {
		return fmt.Errorf("parsing problem: %w", err)
	}
	problem := prefetch.Problem{Viewing: jp.Viewing, TotalProb: jp.TotalProb}
	for _, it := range jp.Items {
		problem.Items = append(problem.Items, prefetch.Item{ID: it.ID, Prob: it.Prob, Retrieval: it.Retrieval})
	}

	var (
		plan  prefetch.Plan
		stats prefetch.SolverStats
		err   error
	)
	switch *algo {
	case "skp":
		plan, stats, err = prefetch.SolveSKP(problem)
	case "skp-paper":
		plan, stats, err = prefetch.SolveSKPPaper(problem)
	case "kp":
		plan, err = prefetch.SolveKP(problem)
	case "greedy":
		plan, err = prefetch.SolveGreedyPrefetch(problem)
	case "exhaustive":
		plan, _, err = prefetch.SolveSKPExhaustive(problem)
	case "costaware":
		plan, stats, err = prefetch.SolveSKPCostAware(problem, *lambda)
	case "stretchaware":
		plan, stats, err = prefetch.SolveSKPStretchAware(problem, *stretch)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		return err
	}

	gain, err := prefetch.Gain(problem, plan)
	if err != nil {
		return err
	}
	bound, err := prefetch.UpperBound(problem)
	if err != nil {
		return err
	}
	out := jsonOutput{
		Algorithm:  *algo,
		PlanIDs:    plan.IDs(),
		Gain:       gain,
		Stretch:    plan.Stretch(problem.Viewing),
		Waste:      prefetch.Waste(plan),
		UpperBound: bound,
		Nodes:      stats.Nodes,
		Prunes:     stats.Prunes,
	}
	if out.PlanIDs == nil {
		out.PlanIDs = []int{}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Printf("algorithm:    %s\n", out.Algorithm)
	fmt.Printf("plan:         %v\n", out.PlanIDs)
	fmt.Printf("gain (Eq.3):  %.6g\n", out.Gain)
	fmt.Printf("stretch:      %.6g\n", out.Stretch)
	fmt.Printf("waste:        %.6g\n", out.Waste)
	fmt.Printf("upper bound:  %.6g (Eq.7)\n", out.UpperBound)
	if out.Nodes > 0 {
		fmt.Printf("search:       %d nodes, %d prunes\n", out.Nodes, out.Prunes)
	}
	if *explain {
		ex, err := prefetch.Explain(problem, plan)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(ex.String())
	}
	return nil
}
