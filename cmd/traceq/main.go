// Command traceq queries a decision trace written by prefetchsim
// -trace-out (JSON lines, internal/obs). It prints the run rollups the
// raw event stream buries: per-kind event counts, per-client round and
// queue-delay statistics, λ trajectories, and per-client wasted-prefetch
// attribution down to the predictor candidate probability that caused
// each speculation. With -chrome it additionally converts the trace
// into the Chrome trace-event format Perfetto and chrome://tracing
// open directly:
//
//	traceq run.jsonl
//	traceq -top 10 run.jsonl
//	traceq -chrome run.chrome.json run.jsonl
//
// Everything is computed from the trace alone, so traceq works on any
// trace regardless of which mode or harness produced it. Output is
// deterministic: same trace in, same bytes out.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sort"

	"prefetch/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "traceq:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("traceq", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		chromeOut = fs.String("chrome", "", "write a Chrome trace-event (Perfetto) timeline to this file")
		top       = fs.Int("top", 5, "rows per wasted-page attribution table")
		force     = fs.Bool("force", false, "overwrite an existing -chrome output file")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: traceq [flags] trace.jsonl")
	}
	if *top < 1 {
		return fmt.Errorf("-top must be >= 1 (got %d)", *top)
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	events, err := obs.ReadTrace(f)
	f.Close()
	if err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("%s: empty trace", fs.Arg(0))
	}

	if *chromeOut != "" {
		if err := writeChrome(*chromeOut, *force, events); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote Chrome trace to %s\n\n", *chromeOut)
	}

	printSummary(out, events)
	printFleet(out, events)
	printRounds(out, events)
	printQueues(out, events)
	printLambda(out, events)
	printWasted(out, events, *top)
	return nil
}

func writeChrome(path string, force bool, events []obs.Event) error {
	flags := os.O_WRONLY | os.O_CREATE | os.O_TRUNC
	if !force {
		flags = os.O_WRONLY | os.O_CREATE | os.O_EXCL
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if errors.Is(err, fs.ErrExist) {
		return fmt.Errorf("%s already exists (pass -force to overwrite)", path)
	}
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// clientIDs returns the sorted client ids present in the trace
// (excluding server-side events).
func clientIDs(events []obs.Event) []int {
	seen := map[int]bool{}
	for _, ev := range events {
		if ev.Client >= 0 {
			seen[ev.Client] = true
		}
	}
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// trackNames maps client id to its track note, when the harness named
// the tracks (prefetch-only/cache/session modes map policies to tracks).
func trackNames(events []obs.Event) map[int]string {
	names := map[int]string{}
	for _, ev := range events {
		if ev.Kind == obs.KindTrack && ev.Note != "" {
			names[ev.Client] = ev.Note
		}
	}
	return names
}

// clientLabel renders "client N" or "client N (name)".
func clientLabel(id int, names map[int]string) string {
	if name := names[id]; name != "" {
		return fmt.Sprintf("c%d %s", id, name)
	}
	return fmt.Sprintf("c%d", id)
}

func printSummary(out io.Writer, events []obs.Event) {
	counts := map[obs.Kind]int{}
	for _, ev := range events {
		counts[ev.Kind]++
	}
	end := events[len(events)-1].T
	for _, ev := range events {
		if ev.T > end {
			end = ev.T
		}
	}
	fmt.Fprintf(out, "%d events over %.4g simulated time units, %d clients\n\n",
		len(events), end, len(clientIDs(events)))
	fmt.Fprintf(out, "%-16s %8s\n", "event", "count")
	for _, k := range obs.Kinds() {
		if counts[k] > 0 {
			fmt.Fprintf(out, "%-16s %8d\n", k, counts[k])
		}
	}
}

// replicaStats aggregates one replica's routing and failure events.
type replicaStats struct {
	routed   int
	demand   int
	fails    int
	recovers int
	lost     int64
	downtime float64
	downAt   float64
	down     bool
}

// printFleet rolls a fleet trace up per replica: placements, failure
// churn, lost transfers and downtime reconstructed from the fail/recover
// timestamps. Traces without fleet events print nothing.
func printFleet(out io.Writer, events []obs.Event) {
	per := map[int]*replicaStats{}
	stat := func(id int) *replicaStats {
		s := per[id]
		if s == nil {
			s = &replicaStats{}
			per[id] = s
		}
		return s
	}
	var reroutes int
	end := events[len(events)-1].T
	for _, ev := range events {
		if ev.T > end {
			end = ev.T
		}
		switch ev.Kind {
		case obs.KindRoute:
			s := stat(ev.Replica)
			s.routed++
			if ev.Demand {
				s.demand++
			}
		case obs.KindReRoute:
			reroutes++
			s := stat(ev.Replica)
			s.routed++
			s.demand++
		case obs.KindReplicaFail:
			s := stat(ev.Replica)
			s.fails++
			s.lost += int64(ev.Queued)
			s.downAt = ev.T
			s.down = true
		case obs.KindReplicaRecover:
			s := stat(ev.Replica)
			s.recovers++
			if s.down {
				s.downtime += ev.T - s.downAt
				s.down = false
			}
		}
	}
	if len(per) == 0 {
		return
	}
	ids := make([]int, 0, len(per))
	for id := range per {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fmt.Fprintf(out, "\nfleet (from route/replica events)\n%-10s %8s %9s %7s %9s %7s %10s\n",
		"replica", "routed", "demand%", "fails", "recovers", "lost", "downtime")
	for _, id := range ids {
		s := per[id]
		if s.down { // still down at end of trace
			s.downtime += end - s.downAt
			s.down = false
		}
		demandPct := 0.0
		if s.routed > 0 {
			demandPct = 100 * float64(s.demand) / float64(s.routed)
		}
		fmt.Fprintf(out, "%-10d %8d %8.1f%% %7d %9d %7d %10.2f\n",
			id, s.routed, demandPct, s.fails, s.recovers, s.lost, s.downtime)
	}
	if reroutes > 0 {
		fmt.Fprintf(out, "%d demand fetches re-routed by failures\n", reroutes)
	}
}

// roundStats aggregates round_end events for one client.
type roundStats struct {
	rounds  int
	access  float64
	demand  int
	viewing float64
	views   int
}

func printRounds(out io.Writer, events []obs.Event) {
	per := map[int]*roundStats{}
	stat := func(c int) *roundStats {
		s := per[c]
		if s == nil {
			s = &roundStats{}
			per[c] = s
		}
		return s
	}
	for _, ev := range events {
		switch ev.Kind {
		case obs.KindRoundStart:
			s := stat(ev.Client)
			s.viewing += ev.Viewing
			s.views++
		case obs.KindRoundEnd:
			s := stat(ev.Client)
			s.rounds++
			s.access += ev.Access
			if ev.Demand {
				s.demand++
			}
		}
	}
	if len(per) == 0 {
		return
	}
	names := trackNames(events)
	fmt.Fprintf(out, "\nrounds\n%-24s %8s %10s %10s %10s\n",
		"client", "rounds", "mean T", "demand%", "mean view")
	var tot roundStats
	for _, id := range clientIDs(events) {
		s := per[id]
		if s == nil || s.rounds == 0 {
			continue
		}
		tot.rounds += s.rounds
		tot.access += s.access
		tot.demand += s.demand
		tot.viewing += s.viewing
		tot.views += s.views
		fmt.Fprintf(out, "%-24s %8d %10.4f %9.1f%% %10.4f\n",
			clientLabel(id, names), s.rounds, s.access/float64(s.rounds),
			100*float64(s.demand)/float64(s.rounds), s.viewing/float64(maxInt(s.views, 1)))
	}
	if tot.rounds > 0 {
		fmt.Fprintf(out, "%-24s %8d %10.4f %9.1f%% %10.4f\n",
			"all", tot.rounds, tot.access/float64(tot.rounds),
			100*float64(tot.demand)/float64(tot.rounds), tot.viewing/float64(maxInt(tot.views, 1)))
	}
}

func printQueues(out io.Writer, events []obs.Event) {
	reg := obs.NewRegistry()
	for _, ev := range events {
		reg.Accumulate(ev)
	}
	if reg.Counter("events."+string(obs.KindDequeue)) == 0 {
		return
	}
	fmt.Fprintf(out, "\nqueue delay (from sq_dequeue)\n")
	for _, class := range []string{"queue_wait_demand", "queue_wait_spec"} {
		h := reg.Histogram(class, obs.DefaultLatencyBounds())
		if h.N() == 0 {
			continue
		}
		fmt.Fprintf(out, "%-18s n=%d mean=%.4f\n", class, h.N(), h.Mean())
		bounds, counts := h.Bounds(), h.Counts()
		for i, c := range counts {
			if c == 0 {
				continue
			}
			label := "+inf"
			if i < len(bounds) {
				label = fmt.Sprintf("%v", bounds[i])
			}
			fmt.Fprintf(out, "  le %-6s %8d\n", label, c)
		}
	}
}

// lambdaStats tracks one client's λ trajectory.
type lambdaStats struct {
	n           int
	first, last float64
	min, max    float64
	sum         float64
}

func printLambda(out io.Writer, events []obs.Event) {
	per := map[int]*lambdaStats{}
	for _, ev := range events {
		if ev.Kind != obs.KindLambda {
			continue
		}
		s := per[ev.Client]
		if s == nil {
			s = &lambdaStats{first: ev.Lambda, min: ev.Lambda, max: ev.Lambda}
			per[ev.Client] = s
		}
		s.n++
		s.last = ev.Lambda
		s.sum += ev.Lambda
		if ev.Lambda < s.min {
			s.min = ev.Lambda
		}
		if ev.Lambda > s.max {
			s.max = ev.Lambda
		}
	}
	if len(per) == 0 {
		return
	}
	names := trackNames(events)
	fmt.Fprintf(out, "\nlambda trajectory\n%-24s %8s %8s %8s %8s %8s %8s\n",
		"client", "updates", "first", "last", "min", "max", "mean")
	for _, id := range clientIDs(events) {
		s := per[id]
		if s == nil {
			continue
		}
		fmt.Fprintf(out, "%-24s %8d %8.3f %8.3f %8.3f %8.3f %8.3f\n",
			clientLabel(id, names), s.n, s.first, s.last, s.min, s.max, s.sum/float64(s.n))
	}
}

// wastedPage aggregates the wasted speculations of one page for one
// client: how often it was fetched in vain and at what predicted
// probability the planner believed in it.
type wastedPage struct {
	page  int
	count int
	prob  float64
}

func printWasted(out io.Writer, events []obs.Event, top int) {
	type clientWaste struct {
		wasted, useful int
		wastedProb     float64
		pages          map[int]*wastedPage
	}
	per := map[int]*clientWaste{}
	stat := func(c int) *clientWaste {
		s := per[c]
		if s == nil {
			s = &clientWaste{pages: map[int]*wastedPage{}}
			per[c] = s
		}
		return s
	}
	for _, ev := range events {
		switch ev.Kind {
		case obs.KindSpecUseful:
			stat(ev.Client).useful++
		case obs.KindSpecWasted:
			s := stat(ev.Client)
			s.wasted++
			s.wastedProb += ev.Prob
			p := s.pages[ev.Page]
			if p == nil {
				p = &wastedPage{page: ev.Page}
				s.pages[ev.Page] = p
			}
			p.count++
			p.prob += ev.Prob
		}
	}
	if len(per) == 0 {
		return
	}
	names := trackNames(events)
	fmt.Fprintf(out, "\nwasted prefetches (cause = predictor candidate probability)\n")
	for _, id := range clientIDs(events) {
		s := per[id]
		if s == nil || s.wasted+s.useful == 0 {
			continue
		}
		meanProb := 0.0
		if s.wasted > 0 {
			meanProb = s.wastedProb / float64(s.wasted)
		}
		fmt.Fprintf(out, "%-24s %d wasted / %d resolved (%.1f%%), mean cand prob %.3f\n",
			clientLabel(id, names), s.wasted, s.wasted+s.useful,
			100*float64(s.wasted)/float64(s.wasted+s.useful), meanProb)
		pages := make([]*wastedPage, 0, len(s.pages))
		for _, p := range s.pages {
			pages = append(pages, p)
		}
		sort.Slice(pages, func(i, j int) bool {
			if pages[i].count != pages[j].count {
				return pages[i].count > pages[j].count
			}
			return pages[i].page < pages[j].page
		})
		if len(pages) > top {
			pages = pages[:top]
		}
		for _, p := range pages {
			fmt.Fprintf(out, "  page %-6d wasted %3d times, mean cand prob %.3f\n",
				p.page, p.count, p.prob/float64(p.count))
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
