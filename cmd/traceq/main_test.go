package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prefetch/internal/fleet"
	"prefetch/internal/multiclient"
	"prefetch/internal/obs"
	"prefetch/internal/webgraph"
)

// writeTestTrace runs a small contended multiclient simulation and
// writes its decision trace to a temp file.
func writeTestTrace(t *testing.T) string {
	t.Helper()
	cfg := multiclient.DefaultConfig()
	cfg.Clients = 3
	cfg.Rounds = 40
	cfg.ServerConcurrency = 1
	cfg.Site = webgraph.SiteConfig{
		Pages: 40, MinLinks: 3, MaxLinks: 6, ZipfS: 1.1,
		MinSizeKB: 2, MaxSizeKB: 40, BandwidthKBps: 16, LatencyS: 0.3,
	}
	cfg.Seed = 11
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := obs.NewWriter(f)
	cfg.Tracer = w
	if _, err := multiclient.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeFleetTrace runs a churny fleet simulation and writes its trace.
func writeFleetTrace(t *testing.T) string {
	t.Helper()
	cfg := fleet.DefaultConfig()
	cfg.Base.Clients = 4
	cfg.Base.Rounds = 40
	cfg.Base.ServerConcurrency = 1
	cfg.Base.Seed = 3
	cfg.Replicas = 3
	cfg.Router = fleet.KindHash
	cfg.FailEvery = 40
	cfg.RecoverAfter = 15
	path := filepath.Join(t.TempDir(), "fleet.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := obs.NewWriter(f)
	cfg.Base.Tracer = w
	if _, err := fleet.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunReports(t *testing.T) {
	trace := writeTestTrace(t)
	var sb strings.Builder
	if err := run([]string{trace}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"events over", "round_start", "sq_dequeue", "transfer_done",
		"rounds", "mean T", "queue delay", "queue_wait_demand",
		"wasted prefetches", "mean cand prob",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunFleetRollup: a fleet trace gets the per-replica section —
// placements, failure churn, lost transfers, downtime — and a plain
// single-server trace does not.
func TestRunFleetRollup(t *testing.T) {
	trace := writeFleetTrace(t)
	var sb strings.Builder
	if err := run([]string{trace}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"fleet (from route/replica events)",
		"routed", "demand%", "fails", "recovers", "lost", "downtime",
		"re-routed by failures",
		"route", "replica_fail", "replica_recover", // kind counts in the summary
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet rollup missing %q:\n%s", want, out)
		}
	}
	var a, b strings.Builder
	if err := run([]string{trace}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{trace}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two fleet reports of the same trace differ")
	}

	single := writeTestTrace(t)
	sb.Reset()
	if err := run([]string{single}, &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "fleet (") {
		t.Errorf("single-server trace grew a fleet section:\n%s", sb.String())
	}
}

func TestRunDeterministic(t *testing.T) {
	trace := writeTestTrace(t)
	var a, b strings.Builder
	if err := run([]string{trace}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{trace}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two reports of the same trace differ")
	}
}

func TestRunChromeOut(t *testing.T) {
	trace := writeTestTrace(t)
	chrome := filepath.Join(t.TempDir(), "out.json")
	var sb strings.Builder
	if err := run([]string{"-chrome", chrome, trace}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"traceEvents"`) {
		t.Fatalf("not a chrome trace:\n%.200s", data)
	}
	// A second run must refuse to overwrite without -force…
	if err := run([]string{"-chrome", chrome, trace}, &sb); err == nil || !strings.Contains(err.Error(), "-force") {
		t.Fatalf("overwrite not refused: %v", err)
	}
	// …and succeed with it.
	if err := run([]string{"-chrome", chrome, "-force", trace}, &sb); err != nil {
		t.Fatalf("run -force: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	trace := writeTestTrace(t)
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte(`{"t":1,"k":"nope","c":0,"page":-1}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{},                   // no trace argument
		{trace, "extra"},     // too many arguments
		{"-top", "0", trace}, // bad -top
		{filepath.Join(t.TempDir(), "missing.jsonl")},
		{empty},
		{bad},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
