// Command prefetchsim runs the paper's Monte-Carlo harnesses from the
// command line.
//
// Prefetch-only mode (§4.4; Figures 4 and 5):
//
//	prefetchsim -mode prefetch-only -n 10 -gen skewy -iters 50000 \
//	            -policies none,perfect,kp,skp,skp-paper
//
// Prefetch-cache mode (§5.3; Figure 7):
//
//	prefetchsim -mode cache -states 100 -requests 50000 -cachesize 40 \
//	            -policies "No+Pr,KP+Pr,SKP+Pr,SKP+Pr+LFU,SKP+Pr+DS"
//
// Traces: -record FILE writes the generated workload as JSON lines;
// -replay FILE replays a previously recorded workload (prefetch-only mode).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"prefetch"
	"prefetch/internal/core"
	"prefetch/internal/sim"
	"prefetch/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "prefetchsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		mode      = flag.String("mode", "prefetch-only", "prefetch-only | cache | session")
		seed      = flag.Uint64("seed", 42, "random seed")
		n         = flag.Int("n", 10, "items per round (prefetch-only)")
		gen       = flag.String("gen", "skewy", "probability generator: skewy | flat | zipf | geometric")
		iters     = flag.Int("iters", 50000, "iterations (prefetch-only)")
		policies  = flag.String("policies", "none,perfect,kp,skp", "comma-separated policy list")
		record    = flag.String("record", "", "write the workload trace to this file")
		replay    = flag.String("replay", "", "replay a workload trace from this file")
		states    = flag.Int("states", 100, "Markov states (cache/session)")
		requests  = flag.Int("requests", 50000, "requests (cache/session)")
		cacheSize = flag.Int("cachesize", 40, "cache capacity in items (cache)")
		skew      = flag.Float64("skew", 0, "Markov transition skew alpha (cache/session)")
	)
	flag.Parse()

	switch *mode {
	case "prefetch-only":
		return runPrefetchOnly(*seed, *n, *gen, *iters, *policies, *record, *replay)
	case "cache":
		return runCache(*seed, *states, *requests, *cacheSize, *skew, *policies)
	case "session":
		return runSession(*seed, *states, *requests, *skew)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

func parsePolicies(list string) ([]sim.Policy, error) {
	var out []sim.Policy
	for _, name := range strings.Split(list, ",") {
		switch strings.TrimSpace(name) {
		case "none":
			out = append(out, sim.NoPrefetch{})
		case "perfect":
			out = append(out, sim.PerfectPolicy{})
		case "kp":
			out = append(out, sim.KPPolicy{})
		case "greedy":
			out = append(out, sim.GreedyPolicy{})
		case "skp":
			out = append(out, sim.SKPPolicy{})
		case "skp-paper":
			out = append(out, sim.SKPPolicy{Mode: core.DeltaPaperTail})
		case "":
		default:
			return nil, fmt.Errorf("unknown policy %q", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no policies given")
	}
	return out, nil
}

func runPrefetchOnly(seed uint64, n int, genName string, iters int, policyList, record, replay string) error {
	var rounds []workload.Round
	if replay != "" {
		f, err := os.Open(replay)
		if err != nil {
			return err
		}
		defer f.Close()
		rounds, err = workload.ReadTrace(f)
		if err != nil {
			return err
		}
	} else {
		pg, err := genByName(genName)
		if err != nil {
			return err
		}
		r := prefetch.NewRand(seed)
		src, err := workload.NewRandomSource(r, workload.Fig45Config(n, pg), iters)
		if err != nil {
			return err
		}
		rounds = workload.Collect(src)
	}
	if record != "" {
		f, err := os.Create(record)
		if err != nil {
			return err
		}
		if err := workload.WriteTrace(f, rounds); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("recorded %d rounds to %s\n", len(rounds), record)
	}
	pols, err := parsePolicies(policyList)
	if err != nil {
		return err
	}
	results, err := sim.RunPrefetchOnly(rounds, pols, sim.PrefetchOnlyOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %10s %10s %10s %12s %12s\n", "policy", "mean T", "±95%", "max T", "waste/round", "usage/round")
	for _, res := range results {
		fmt.Printf("%-12s %10.4f %10.4f %10.2f %12.3f %12.3f\n",
			res.Policy, res.Overall.Mean(), res.Overall.CI95(), res.Overall.Max(),
			res.Waste.Mean(), res.Usage.Mean())
	}
	return nil
}

func genByName(name string) (prefetch.ProbGen, error) {
	switch name {
	case "skewy":
		return prefetch.SkewyGen{}, nil
	case "flat":
		return prefetch.FlatGen{}, nil
	case "zipf":
		return prefetch.ZipfGen{}, nil
	case "geometric":
		return prefetch.GeometricGen{}, nil
	default:
		return nil, fmt.Errorf("unknown generator %q", name)
	}
}

func runCache(seed uint64, states, requests, cacheSize int, skew float64, policyList string) error {
	r := prefetch.NewRand(seed)
	cfg := prefetch.Fig7MarkovConfig()
	cfg.States = states
	cfg.SkewAlpha = skew
	if states < cfg.MaxOut {
		cfg.MinOut = max(1, states/4)
		cfg.MaxOut = max(cfg.MinOut, states/2)
	}
	trace, err := prefetch.BuildMarkovTrace(r, cfg, 1, 30, requests)
	if err != nil {
		return err
	}
	// The cache mode ignores unknown names and runs the Fig. 7 planners the
	// user listed; "all" (or the prefetch-only default) runs all five.
	wanted := map[string]bool{}
	for _, name := range strings.Split(policyList, ",") {
		wanted[strings.TrimSpace(name)] = true
	}
	runAll := wanted["all"] || policyList == "none,perfect,kp,skp"
	fmt.Printf("%-12s %10s %10s %8s %14s %14s\n", "policy", "mean T", "±95%", "hit%", "prefetch-net", "demand-net")
	for _, planner := range prefetch.Fig7Planners(prefetch.DeltaTheorem3) {
		if !runAll && !wanted[planner.Label] {
			continue
		}
		res, err := prefetch.RunPrefetchCache(trace, planner, cacheSize)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %10.4f %10.4f %7.1f%% %14.0f %14.0f\n",
			res.Policy, res.Access.Mean(), res.Access.CI95(), 100*res.HitRate(),
			res.Prefetch, res.Demand)
	}
	return nil
}

func runSession(seed uint64, states, requests int, skew float64) error {
	r := prefetch.NewRand(seed)
	cfg := prefetch.MarkovConfig{
		States: states, MinOut: 10, MaxOut: 20, MinViewing: 1, MaxViewing: 20, SkewAlpha: skew,
	}
	if states < 20 {
		cfg.MinOut = max(1, states/4)
		cfg.MaxOut = max(cfg.MinOut, states/2)
	}
	trace, err := prefetch.BuildMarkovTrace(r, cfg, 1, 30, requests)
	if err != nil {
		return err
	}
	planners := []struct {
		planner sim.SessionPlanner
		opts    sim.SessionOptions
	}{
		{sim.PlainPlanner{Policy: sim.NoPrefetch{}}, sim.SessionOptions{}},
		{sim.PlainPlanner{Policy: sim.KPPolicy{}}, sim.SessionOptions{}},
		{sim.PlainPlanner{Policy: sim.SKPPolicy{}}, sim.SessionOptions{}},
		{sim.LookaheadPlanner{}, sim.SessionOptions{}},
		{sim.Depth2Planner{}, sim.SessionOptions{}},
		{sim.Depth2Planner{}, sim.SessionOptions{EffectiveViewing: true}},
	}
	fmt.Printf("%-16s %10s %14s\n", "planner", "mean T", "net/request")
	for _, pl := range planners {
		res, err := sim.RunMarkovSession(trace, pl.planner, pl.opts)
		if err != nil {
			return err
		}
		label := res.Policy
		if pl.opts.EffectiveViewing {
			label += "+eff-v"
		}
		fmt.Printf("%-16s %10.4f %14.3f\n", label, res.Access.Mean(), res.NetworkBusy/float64(res.Requests))
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
