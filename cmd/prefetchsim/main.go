// Command prefetchsim runs the paper's Monte-Carlo harnesses from the
// command line.
//
// Prefetch-only mode (§4.4; Figures 4 and 5):
//
//	prefetchsim -mode prefetch-only -n 10 -gen skewy -iters 50000 \
//	            -policies none,perfect,kp,skp,skp-paper
//
// Prefetch-cache mode (§5.3; Figure 7):
//
//	prefetchsim -mode cache -states 100 -requests 50000 -cachesize 40 \
//	            -policies "No+Pr,KP+Pr,SKP+Pr,SKP+Pr+LFU,SKP+Pr+DS"
//
// Multi-client mode (shared-server contention beyond the paper's
// single-client link): N concurrent surfers with SKP planners and client
// caches share a server with bounded transfer concurrency and an optional
// server-side cache. A single -clients value prints the per-client table;
// a comma list sweeps N with seed-replicated parallel runs:
//
//	prefetchsim -mode multiclient -clients 8 -serverconc 2 -servercache 40
//	prefetchsim -mode multiclient -clients 1,2,4,8,16 -serverconc 2 -reps 3
//
// Traces: -record FILE writes the generated workload as JSON lines;
// -replay FILE replays a previously recorded workload (prefetch-only mode).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"prefetch"
	"prefetch/internal/core"
	"prefetch/internal/sim"
	"prefetch/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "prefetchsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("prefetchsim", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		mode      = fs.String("mode", "prefetch-only", "prefetch-only | cache | session | multiclient")
		seed      = fs.Uint64("seed", 42, "random seed")
		n         = fs.Int("n", 10, "items per round (prefetch-only)")
		gen       = fs.String("gen", "skewy", "probability generator: skewy | flat | zipf | geometric")
		iters     = fs.Int("iters", 50000, "iterations (prefetch-only)")
		policies  = fs.String("policies", "none,perfect,kp,skp", "comma-separated policy list")
		record    = fs.String("record", "", "write the workload trace to this file")
		replay    = fs.String("replay", "", "replay a workload trace from this file")
		states    = fs.Int("states", 100, "Markov states (cache/session)")
		requests  = fs.Int("requests", 50000, "requests (cache/session)")
		cacheSize = fs.Int("cachesize", 40, "cache capacity in items (cache)")
		skew      = fs.Float64("skew", 0, "Markov transition skew alpha (cache/session)")

		clients     = fs.String("clients", "8", "client count, or comma list to sweep (multiclient)")
		serverConc  = fs.Int("serverconc", 2, "server transfer concurrency (multiclient)")
		serverCache = fs.Int("servercache", 0, "shared server cache slots, 0 = none (multiclient)")
		rounds      = fs.Int("rounds", 300, "browsing rounds per client (multiclient)")
		reps        = fs.Int("reps", 3, "seed replications per sweep point (multiclient)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	switch *mode {
	case "prefetch-only":
		return runPrefetchOnly(out, *seed, *n, *gen, *iters, *policies, *record, *replay)
	case "cache":
		return runCache(out, *seed, *states, *requests, *cacheSize, *skew, *policies)
	case "session":
		return runSession(out, *seed, *states, *requests, *skew)
	case "multiclient":
		return runMultiClient(out, *seed, *clients, *serverConc, *serverCache, *rounds, *reps)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

func parsePolicies(list string) ([]sim.Policy, error) {
	var out []sim.Policy
	for _, name := range strings.Split(list, ",") {
		switch strings.TrimSpace(name) {
		case "none":
			out = append(out, sim.NoPrefetch{})
		case "perfect":
			out = append(out, sim.PerfectPolicy{})
		case "kp":
			out = append(out, sim.KPPolicy{})
		case "greedy":
			out = append(out, sim.GreedyPolicy{})
		case "skp":
			out = append(out, sim.SKPPolicy{})
		case "skp-paper":
			out = append(out, sim.SKPPolicy{Mode: core.DeltaPaperTail})
		case "":
		default:
			return nil, fmt.Errorf("unknown policy %q", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no policies given")
	}
	return out, nil
}

func runPrefetchOnly(out io.Writer, seed uint64, n int, genName string, iters int, policyList, record, replay string) error {
	var rounds []workload.Round
	if replay != "" {
		f, err := os.Open(replay)
		if err != nil {
			return err
		}
		defer f.Close()
		rounds, err = workload.ReadTrace(f)
		if err != nil {
			return err
		}
	} else {
		pg, err := genByName(genName)
		if err != nil {
			return err
		}
		r := prefetch.NewRand(seed)
		src, err := workload.NewRandomSource(r, workload.Fig45Config(n, pg), iters)
		if err != nil {
			return err
		}
		rounds = workload.Collect(src)
	}
	if record != "" {
		f, err := os.Create(record)
		if err != nil {
			return err
		}
		if err := workload.WriteTrace(f, rounds); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "recorded %d rounds to %s\n", len(rounds), record)
	}
	pols, err := parsePolicies(policyList)
	if err != nil {
		return err
	}
	results, err := sim.RunPrefetchOnly(rounds, pols, sim.PrefetchOnlyOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-12s %10s %10s %10s %12s %12s\n", "policy", "mean T", "±95%", "max T", "waste/round", "usage/round")
	for _, res := range results {
		fmt.Fprintf(out, "%-12s %10.4f %10.4f %10.2f %12.3f %12.3f\n",
			res.Policy, res.Overall.Mean(), res.Overall.CI95(), res.Overall.Max(),
			res.Waste.Mean(), res.Usage.Mean())
	}
	return nil
}

func genByName(name string) (prefetch.ProbGen, error) {
	switch name {
	case "skewy":
		return prefetch.SkewyGen{}, nil
	case "flat":
		return prefetch.FlatGen{}, nil
	case "zipf":
		return prefetch.ZipfGen{}, nil
	case "geometric":
		return prefetch.GeometricGen{}, nil
	default:
		return nil, fmt.Errorf("unknown generator %q", name)
	}
}

func runCache(out io.Writer, seed uint64, states, requests, cacheSize int, skew float64, policyList string) error {
	r := prefetch.NewRand(seed)
	cfg := prefetch.Fig7MarkovConfig()
	cfg.States = states
	cfg.SkewAlpha = skew
	if states < cfg.MaxOut {
		cfg.MinOut = max(1, states/4)
		cfg.MaxOut = max(cfg.MinOut, states/2)
	}
	trace, err := prefetch.BuildMarkovTrace(r, cfg, 1, 30, requests)
	if err != nil {
		return err
	}
	// The cache mode ignores unknown names and runs the Fig. 7 planners the
	// user listed; "all" (or the prefetch-only default) runs all five.
	wanted := map[string]bool{}
	for _, name := range strings.Split(policyList, ",") {
		wanted[strings.TrimSpace(name)] = true
	}
	runAll := wanted["all"] || policyList == "none,perfect,kp,skp"
	fmt.Fprintf(out, "%-12s %10s %10s %8s %14s %14s\n", "policy", "mean T", "±95%", "hit%", "prefetch-net", "demand-net")
	for _, planner := range prefetch.Fig7Planners(prefetch.DeltaTheorem3) {
		if !runAll && !wanted[planner.Label] {
			continue
		}
		res, err := prefetch.RunPrefetchCache(trace, planner, cacheSize)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-12s %10.4f %10.4f %7.1f%% %14.0f %14.0f\n",
			res.Policy, res.Access.Mean(), res.Access.CI95(), 100*res.HitRate(),
			res.Prefetch, res.Demand)
	}
	return nil
}

func runSession(out io.Writer, seed uint64, states, requests int, skew float64) error {
	r := prefetch.NewRand(seed)
	cfg := prefetch.MarkovConfig{
		States: states, MinOut: 10, MaxOut: 20, MinViewing: 1, MaxViewing: 20, SkewAlpha: skew,
	}
	if states < 20 {
		cfg.MinOut = max(1, states/4)
		cfg.MaxOut = max(cfg.MinOut, states/2)
	}
	trace, err := prefetch.BuildMarkovTrace(r, cfg, 1, 30, requests)
	if err != nil {
		return err
	}
	planners := []struct {
		planner sim.SessionPlanner
		opts    sim.SessionOptions
	}{
		{sim.PlainPlanner{Policy: sim.NoPrefetch{}}, sim.SessionOptions{}},
		{sim.PlainPlanner{Policy: sim.KPPolicy{}}, sim.SessionOptions{}},
		{sim.PlainPlanner{Policy: sim.SKPPolicy{}}, sim.SessionOptions{}},
		{sim.LookaheadPlanner{}, sim.SessionOptions{}},
		{sim.Depth2Planner{}, sim.SessionOptions{}},
		{sim.Depth2Planner{}, sim.SessionOptions{EffectiveViewing: true}},
	}
	fmt.Fprintf(out, "%-16s %10s %14s\n", "planner", "mean T", "net/request")
	for _, pl := range planners {
		res, err := sim.RunMarkovSession(trace, pl.planner, pl.opts)
		if err != nil {
			return err
		}
		label := res.Policy
		if pl.opts.EffectiveViewing {
			label += "+eff-v"
		}
		fmt.Fprintf(out, "%-16s %10.4f %14.3f\n", label, res.Access.Mean(), res.NetworkBusy/float64(res.Requests))
	}
	return nil
}

// parseClients parses a single client count or a comma-separated sweep axis.
func parseClients(list string) ([]int, error) {
	var ns []int
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad client count %q", part)
		}
		ns = append(ns, n)
	}
	if len(ns) == 0 {
		return nil, fmt.Errorf("no client counts given")
	}
	return ns, nil
}

func runMultiClient(out io.Writer, seed uint64, clients string, serverConc, serverCache, rounds, reps int) error {
	ns, err := parseClients(clients)
	if err != nil {
		return err
	}
	cfg := prefetch.DefaultMultiClientConfig()
	cfg.Seed = seed
	cfg.ServerConcurrency = serverConc
	cfg.ServerCacheSlots = serverCache
	cfg.Rounds = rounds

	if len(ns) == 1 {
		cfg.Clients = ns[0]
		cmp, err := prefetch.CompareMultiClient(cfg)
		if err != nil {
			return err
		}
		res := cmp.Prefetch
		fmt.Fprintf(out, "%d clients, server concurrency %d, server cache %d slots, %d rounds each\n\n",
			cfg.Clients, cfg.ServerConcurrency, cfg.ServerCacheSlots, cfg.Rounds)
		fmt.Fprintf(out, "%-8s %10s %12s %12s %10s %10s\n",
			"client", "mean T", "queue wait", "prefetches", "0-wait%", "improve%")
		for i, pc := range res.PerClient {
			fmt.Fprintf(out, "%-8d %10.4f %12.4f %12d %9.1f%% %9.1f%%\n",
				pc.Client, pc.Access.Mean(), pc.QueueWait.Mean(), pc.PrefetchIssued,
				100*float64(pc.ZeroWaitRounds)/float64(pc.Access.N()),
				100*cmp.ClientImprovement(i))
		}
		var zeroWait int64
		for _, pc := range res.PerClient {
			zeroWait += pc.ZeroWaitRounds
		}
		fmt.Fprintf(out, "\n%-8s %10.4f %12.4f %12s %9.1f%% %9.1f%%\n",
			"all", res.Access.Mean(), res.QueueWait.Mean(), "",
			100*float64(zeroWait)/float64(res.Access.N()), 100*cmp.Improvement())
		fmt.Fprintf(out, "server utilization %.1f%%\n", 100*res.Utilization())
		if cfg.ServerCacheSlots > 0 {
			fmt.Fprintf(out, "server cache hit rate %.1f%%\n", 100*res.HitRate())
		}
		return nil
	}

	points, err := prefetch.SweepMultiClient(cfg, ns, reps, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "sweep over clients, server concurrency %d, %d reps, %d rounds each\n\n",
		cfg.ServerConcurrency, reps, cfg.Rounds)
	fmt.Fprintf(out, "%-8s %10s %10s %12s %10s %10s\n",
		"clients", "mean T", "±95%", "queue wait", "util%", "improve%")
	for _, p := range points {
		fmt.Fprintf(out, "%-8d %10.4f %10.4f %12.4f %9.1f%% %9.1f%%\n",
			p.Clients, p.Access.Mean(), p.Access.CI95(), p.QueueWait.Mean(),
			100*p.Utilization.Mean(), 100*p.Improvement.Mean())
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
