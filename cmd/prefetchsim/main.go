// Command prefetchsim runs the paper's Monte-Carlo harnesses from the
// command line.
//
// Prefetch-only mode (§4.4; Figures 4 and 5):
//
//	prefetchsim -mode prefetch-only -n 10 -gen skewy -iters 50000 \
//	            -policies none,perfect,kp,skp,skp-paper
//
// Prefetch-cache mode (§5.3; Figure 7):
//
//	prefetchsim -mode cache -states 100 -requests 50000 -cachesize 40 \
//	            -policies "No+Pr,KP+Pr,SKP+Pr,SKP+Pr+LFU,SKP+Pr+DS"
//
// Multi-client mode (shared-server contention beyond the paper's
// single-client link): N concurrent surfers with SKP planners and client
// caches share a server with bounded transfer concurrency and an optional
// server-side cache. A single -clients value prints the per-client table;
// a comma list sweeps N with seed-replicated parallel runs:
//
//	prefetchsim -mode multiclient -clients 8 -serverconc 2 -servercache 40
//	prefetchsim -mode multiclient -clients 1,2,4,8,16 -serverconc 2 -reps 3
//
// The shared server's scheduling subsystem (internal/schedsrv) is selected
// with -discipline: fifo (seed behaviour), priority (strict demand
// priority; add -preempt to abort in-flight speculative transfers), wfq
// (weighted fair queueing with -weights demand:spec), or shaped
// (per-client token buckets, -rate and -burst). -admit-util enables
// utilisation-gated admission control of speculative requests. A comma
// list (or "all") sweeps disciplines over the identical workload:
//
//	prefetchsim -mode multiclient -clients 16 -discipline priority -preempt
//	prefetchsim -mode multiclient -clients 16 -discipline wfq -weights 8:1
//	prefetchsim -mode multiclient -clients 16 -discipline all -admit-util 0.85
//
// Adaptive speculation control (internal/adaptive) closes the loop on the
// §6 cost-aware λ: -controller selects how each client re-prices its
// speculation from per-round congestion feedback — static (fixed λ =
// -lambda0), aimd (multiplicative back-off, additive recovery),
// target-util (integral control toward -target-util) or delay-gradient
// (backs off when own demand delay rises). A comma list (or "all")
// sweeps controllers over the identical workload:
//
//	prefetchsim -mode multiclient -clients 16 -controller aimd
//	prefetchsim -mode multiclient -clients 16 -controller all
//	prefetchsim -mode multiclient -clients 16 -controller target-util -target-util 0.6
//
// Prediction sources (internal/predict) select the access model each
// client plans over: -predictor oracle (the surfer's true next-page
// distribution — the default, and bit-for-bit the pre-subsystem planner),
// depgraph (order-1 dependency graph learned online from the client's own
// access stream), ppm (order -ppm-order PPM, same stream; -cold-start
// none|uniform picks the fallback while the model is cold) or shared (one
// server-side model trained on the aggregate stream of every client;
// add -warm-cache with -servercache to let the server pre-admit the
// model's top pages). A comma list (or "all") sweeps predictors over the
// identical workload, and combining predictor and controller lists prints
// the controller×predictor grid with per-controller Pareto frontiers:
//
//	prefetchsim -mode multiclient -clients 16 -predictor depgraph
//	prefetchsim -mode multiclient -clients 16 -predictor all
//	prefetchsim -mode multiclient -clients 16 -predictor shared -servercache 40 -warm-cache
//	prefetchsim -mode multiclient -clients 16 -predictor all -controller all
//
// Non-stationary workloads: -drift-every N re-draws each surfer's hot
// set every N rounds from a per-client derived drift stream
// (deterministic and replay-safe; the oracle stays exact across
// phases). The drift-tracking predictors ride the same axis: decay
// (exponentially decayed counts, -decay-half-life observations),
// mixture (popularity×transition blend at -mix-weight) and ppm-escape
// (escape-blended PPM, -ppm-order):
//
//	prefetchsim -mode multiclient -clients 16 -drift-every 40 -predictor all
//	prefetchsim -mode multiclient -clients 16 -drift-every 40 -predictor decay -decay-half-life 120
//
// Fleet mode replicates the shared server — each replica a full
// scheduling-arbitrated, cache-equipped server built from the
// multiclient flags above — behind a pluggable request router, with
// deterministic replica failure injection. -router selects the routing
// policy (round-robin | least-loaded | hash), -replicas the fleet size;
// comma lists (or "all" for routers) print the router × replicas sweep
// table with availability under churn. -fail-every sets each replica's
// mean time between failures (0 = none; a crash loses the replica's
// queued and in-flight transfers and re-routes the displaced demands)
// and -recover-after the repair time:
//
//	prefetchsim -mode fleet -clients 8 -replicas 4 -router hash -fail-every 40 -recover-after 15
//	prefetchsim -mode fleet -clients 8 -replicas 1,2,4 -router all -fail-every 40 -recover-after 15
//
// Traces: -record FILE writes the generated workload as JSON lines;
// -replay FILE replays a previously recorded workload (prefetch-only mode).
//
// Observability (every mode): -trace-out FILE streams the run's decision
// trace as JSON lines (see internal/obs; inspect with cmd/traceq, or
// convert to a Perfetto timeline with traceq -chrome), and -metrics-out
// FILE writes the aggregated metrics registry as JSON. Both refuse to
// overwrite an existing file unless -force is given (-record too).
// -cpuprofile and -memprofile write pprof profiles. Traces are keyed on
// simulated time and byte-identical for a fixed seed regardless of
// GOMAXPROCS; -trace-out requires a single run (no sweep axes):
//
//	prefetchsim -mode multiclient -clients 8 -controller aimd \
//	            -trace-out run.jsonl -metrics-out run-metrics.json
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"prefetch"
	"prefetch/internal/core"
	"prefetch/internal/obs"
	"prefetch/internal/sim"
	"prefetch/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "prefetchsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("prefetchsim", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		mode      = fs.String("mode", "prefetch-only", "prefetch-only | cache | session | multiclient | fleet")
		seed      = fs.Uint64("seed", 42, "random seed")
		n         = fs.Int("n", 10, "items per round (prefetch-only)")
		gen       = fs.String("gen", "skewy", "probability generator: skewy | flat | zipf | geometric")
		iters     = fs.Int("iters", 50000, "iterations (prefetch-only)")
		policies  = fs.String("policies", "none,perfect,kp,skp", "comma-separated policy list")
		record    = fs.String("record", "", "write the workload trace to this file")
		replay    = fs.String("replay", "", "replay a workload trace from this file")
		states    = fs.Int("states", 100, "Markov states (cache/session)")
		requests  = fs.Int("requests", 50000, "requests (cache/session)")
		cacheSize = fs.Int("cachesize", 40, "cache capacity in items (cache)")
		skew      = fs.Float64("skew", 0, "Markov transition skew alpha (cache/session)")

		clients     = fs.String("clients", "8", "client count, or comma list to sweep (multiclient)")
		serverConc  = fs.Int("serverconc", 2, "server transfer concurrency (multiclient)")
		serverCache = fs.Int("servercache", 0, "shared server cache slots, 0 = none (multiclient)")
		rounds      = fs.Int("rounds", 300, "browsing rounds per client (multiclient)")
		reps        = fs.Int("reps", 3, "seed replications per sweep point (multiclient)")
		shards      = fs.Int("shards", 0, "parallel workload-precompute shards, 0 = one per CPU; results are bit-identical for every value (multiclient/fleet)")

		discipline  = fs.String("discipline", "fifo", "server scheduling: fifo | priority | wfq | shaped, comma list or \"all\" to sweep (multiclient)")
		preempt     = fs.Bool("preempt", false, "priority discipline: demands abort in-flight speculative transfers (multiclient)")
		weights     = fs.String("weights", "4:1", "wfq demand:speculative class weights (multiclient)")
		shapeRate   = fs.Float64("rate", 0.5, "shaped discipline: per-client service-seconds of credit per second (multiclient)")
		shapeBurst  = fs.Float64("burst", 8, "shaped discipline: per-client bucket depth in service-seconds (multiclient)")
		admitUtil   = fs.Float64("admit-util", 0, "drop speculative requests above this utilisation, 0 = off (multiclient)")
		admitWindow = fs.Float64("admit-window", 50, "sliding window for the utilisation estimate (multiclient)")
		admitDefer  = fs.Bool("admit-defer", false, "defer gated speculative requests instead of dropping them (multiclient)")

		controller = fs.String("controller", "static", "adaptive λ controller: static | aimd | target-util | delay-gradient, comma list or \"all\" to sweep (multiclient)")
		lambda0    = fs.Float64("lambda0", 0, "base network-usage price λ and controller floor (multiclient)")
		targetUtil = fs.Float64("target-util", 0.7, "utilisation setpoint for the target-util controller (multiclient)")

		predictor = fs.String("predictor", "oracle", "prediction source: oracle | depgraph | ppm | shared | decay | mixture | ppm-escape, comma list or \"all\" to sweep (multiclient)")
		ppmOrder  = fs.Int("ppm-order", 2, "PPM context order for -predictor ppm and ppm-escape (multiclient)")
		coldStart = fs.String("cold-start", "none", "learned-predictor cold-start fallback: none | uniform (multiclient)")
		warmCache = fs.Bool("warm-cache", false, "server pre-admits the shared model's top pages (needs -predictor shared and -servercache) (multiclient)")

		replicas     = fs.String("replicas", "3", "replica count, or comma list to sweep (fleet)")
		router       = fs.String("router", "hash", "request router: round-robin | least-loaded | hash, comma list or \"all\" to sweep (fleet)")
		failEvery    = fs.Float64("fail-every", 0, "mean time between failures per replica, 0 = none (fleet)")
		recoverAfter = fs.Float64("recover-after", 0, "repair time after a replica failure (fleet)")

		driftEvery    = fs.Int("drift-every", 0, "re-draw each surfer's hot set every N rounds, 0 = stationary (multiclient)")
		decayHalfLife = fs.Float64("decay-half-life", 500, "observation half-life for -predictor decay (multiclient)")
		mixWeight     = fs.Float64("mix-weight", 0.25, "popularity share for -predictor mixture, in (0, 1) (multiclient)")

		traceOut   = fs.String("trace-out", "", "write the decision trace as JSON lines to this file (single run only)")
		metricsOut = fs.String("metrics-out", "", "write the aggregated metrics registry as JSON to this file")
		cpuprofile = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a pprof heap profile to this file")
		force      = fs.Bool("force", false, "overwrite existing -record/-trace-out/-metrics-out/-*profile files")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	// Flag values consumed only by the multiclient mode are still
	// validated in every mode: a typo'd -discipline or -controller must
	// exit non-zero instead of being silently ignored.
	if _, err := parseDisciplines(*discipline); err != nil {
		return err
	}
	if _, err := parseControllers(*controller); err != nil {
		return err
	}
	if _, err := parsePredictors(*predictor); err != nil {
		return err
	}
	if _, err := parseRouters(*router); err != nil {
		return err
	}
	if _, err := parseReplicas(*replicas); err != nil {
		return err
	}
	if err := checkFailureFlags(*failEvery, *recoverAfter); err != nil {
		return err
	}
	// The drift and predictor tunables are likewise validated in every
	// mode; PredictConfig treats zeros as "use the default", so explicit
	// bad values (and NaN) must be refused here rather than silently
	// defaulted.
	if *driftEvery < 0 {
		return fmt.Errorf("-drift-every must be >= 0 (got %d)", *driftEvery)
	}
	if !(*decayHalfLife > 0) || math.IsInf(*decayHalfLife, 0) {
		return fmt.Errorf("-decay-half-life must be finite and positive (got %v)", *decayHalfLife)
	}
	if !(*mixWeight > 0 && *mixWeight < 1) {
		return fmt.Errorf("-mix-weight must be in (0, 1) (got %v)", *mixWeight)
	}

	obsOut, err := setupObs(*traceOut, *metricsOut, *force)
	if err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := createOutput(*cpuprofile, *force)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	runErr := dispatch(*mode, out, obsOut.tracer, modeArgs{
		seed: *seed, n: *n, gen: *gen, iters: *iters, policies: *policies,
		record: *record, replay: *replay, force: *force,
		states: *states, requests: *requests, cacheSize: *cacheSize, skew: *skew,
		mc: mcOptions{
			seed:          *seed,
			clients:       *clients,
			serverConc:    *serverConc,
			serverCache:   *serverCache,
			rounds:        *rounds,
			reps:          *reps,
			shards:        *shards,
			discipline:    *discipline,
			preempt:       *preempt,
			weights:       *weights,
			rate:          *shapeRate,
			burst:         *shapeBurst,
			admitUtil:     *admitUtil,
			admitWindow:   *admitWindow,
			admitDefer:    *admitDefer,
			controller:    *controller,
			lambda0:       *lambda0,
			targetUtil:    *targetUtil,
			predictor:     *predictor,
			ppmOrder:      *ppmOrder,
			coldStart:     *coldStart,
			warmCache:     *warmCache,
			driftEvery:    *driftEvery,
			decayHalfLife: *decayHalfLife,
			mixWeight:     *mixWeight,
			replicas:      *replicas,
			router:        *router,
			failEvery:     *failEvery,
			recoverAfter:  *recoverAfter,
		},
	})
	// Flush the observability outputs even when the run failed — a
	// partial trace is still evidence.
	if err := obsOut.finish(); runErr == nil {
		runErr = err
	}
	if runErr == nil && *memprofile != "" {
		runErr = writeMemProfile(*memprofile, *force)
	}
	return runErr
}

// modeArgs bundles the per-mode flag values for dispatch.
type modeArgs struct {
	seed                        uint64
	n                           int
	gen                         string
	iters                       int
	policies                    string
	record, replay              string
	force                       bool
	states, requests, cacheSize int
	skew                        float64
	mc                          mcOptions
}

func dispatch(mode string, out io.Writer, tr obs.Tracer, a modeArgs) error {
	switch mode {
	case "prefetch-only":
		return runPrefetchOnly(out, a.seed, a.n, a.gen, a.iters, a.policies, a.record, a.replay, a.force, tr)
	case "cache":
		return runCache(out, a.seed, a.states, a.requests, a.cacheSize, a.skew, a.policies, tr)
	case "session":
		return runSession(out, a.seed, a.states, a.requests, a.skew, tr)
	case "multiclient":
		return runMultiClient(out, a.mc, tr)
	case "fleet":
		return runFleet(out, a.mc, tr)
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
}

// createOutput creates path for writing. Without force an existing file
// is refused, so a run cannot silently clobber earlier results.
func createOutput(path string, force bool) (*os.File, error) {
	flags := os.O_WRONLY | os.O_CREATE | os.O_TRUNC
	if !force {
		flags = os.O_WRONLY | os.O_CREATE | os.O_EXCL
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if errors.Is(err, fs.ErrExist) {
		return nil, fmt.Errorf("%s already exists (pass -force to overwrite)", path)
	}
	return f, err
}

// registryTracer folds every event into a metrics registry.
type registryTracer struct{ reg *obs.Registry }

func (registryTracer) Enabled() bool       { return true }
func (t registryTracer) Emit(ev obs.Event) { t.reg.Accumulate(ev) }

// obsOutputs owns a run's observability sinks: an optional JSONL trace
// writer and an optional metrics registry, fanned out behind one tracer.
type obsOutputs struct {
	tracer  obs.Tracer
	writer  *obs.Writer
	traceF  *os.File
	reg     *obs.Registry
	metrics string
	force   bool
}

// setupObs opens the -trace-out / -metrics-out sinks. The metrics file
// is created up front so a clobber is refused before the run spends any
// time, but written only at finish.
func setupObs(traceOut, metricsOut string, force bool) (*obsOutputs, error) {
	o := &obsOutputs{metrics: metricsOut, force: force}
	var sinks obs.Multi
	if traceOut != "" {
		f, err := createOutput(traceOut, force)
		if err != nil {
			return nil, err
		}
		o.traceF = f
		o.writer = obs.NewWriter(f)
		sinks = append(sinks, o.writer)
	}
	if metricsOut != "" {
		f, err := createOutput(metricsOut, force)
		if err != nil {
			if o.traceF != nil {
				o.traceF.Close()
			}
			return nil, err
		}
		f.Close() // reopened at finish; this call only reserved the path
		o.reg = obs.NewRegistry()
		sinks = append(sinks, registryTracer{o.reg})
	}
	if len(sinks) > 0 {
		o.tracer = sinks
	}
	return o, nil
}

// finish flushes the trace and writes the metrics file.
func (o *obsOutputs) finish() error {
	var first error
	if o.writer != nil {
		if err := o.writer.Flush(); first == nil {
			first = err
		}
		if err := o.traceF.Close(); first == nil {
			first = err
		}
	}
	if o.reg != nil {
		f, err := createOutput(o.metrics, true)
		if err != nil {
			if first == nil {
				first = err
			}
			return first
		}
		if err := o.reg.WriteJSON(f); first == nil {
			first = err
		}
		if err := f.Close(); first == nil {
			first = err
		}
	}
	return first
}

// writeMemProfile snapshots the heap after a GC, the standard pprof
// idiom for allocation profiles.
func writeMemProfile(path string, force bool) error {
	f, err := createOutput(path, force)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parsePolicies(list string) ([]sim.Policy, error) {
	var out []sim.Policy
	for _, name := range strings.Split(list, ",") {
		switch strings.TrimSpace(name) {
		case "none":
			out = append(out, sim.NoPrefetch{})
		case "perfect":
			out = append(out, sim.PerfectPolicy{})
		case "kp":
			out = append(out, sim.KPPolicy{})
		case "greedy":
			out = append(out, sim.GreedyPolicy{})
		case "skp":
			out = append(out, sim.SKPPolicy{})
		case "skp-paper":
			out = append(out, sim.SKPPolicy{Mode: core.DeltaPaperTail})
		case "":
		default:
			return nil, fmt.Errorf("unknown policy %q", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no policies given")
	}
	return out, nil
}

func runPrefetchOnly(out io.Writer, seed uint64, n int, genName string, iters int, policyList, record, replay string, force bool, tr obs.Tracer) error {
	var rounds []workload.Round
	if replay != "" {
		f, err := os.Open(replay)
		if err != nil {
			return err
		}
		defer f.Close()
		rounds, err = workload.ReadTrace(f)
		if err != nil {
			return err
		}
	} else {
		pg, err := genByName(genName)
		if err != nil {
			return err
		}
		r := prefetch.NewRand(seed)
		src, err := workload.NewRandomSource(r, workload.Fig45Config(n, pg), iters)
		if err != nil {
			return err
		}
		rounds = workload.Collect(src)
	}
	if record != "" {
		f, err := createOutput(record, force)
		if err != nil {
			return err
		}
		if err := workload.WriteTrace(f, rounds); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "recorded %d rounds to %s\n", len(rounds), record)
	}
	pols, err := parsePolicies(policyList)
	if err != nil {
		return err
	}
	results, err := sim.RunPrefetchOnly(rounds, pols, sim.PrefetchOnlyOptions{Tracer: tr})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-12s %10s %10s %10s %12s %12s\n", "policy", "mean T", "±95%", "max T", "waste/round", "usage/round")
	for _, res := range results {
		fmt.Fprintf(out, "%-12s %10.4f %10.4f %10.2f %12.3f %12.3f\n",
			res.Policy, res.Overall.Mean(), res.Overall.CI95(), res.Overall.Max(),
			res.Waste.Mean(), res.Usage.Mean())
	}
	return nil
}

func genByName(name string) (prefetch.ProbGen, error) {
	switch name {
	case "skewy":
		return prefetch.SkewyGen{}, nil
	case "flat":
		return prefetch.FlatGen{}, nil
	case "zipf":
		return prefetch.ZipfGen{}, nil
	case "geometric":
		return prefetch.GeometricGen{}, nil
	default:
		return nil, fmt.Errorf("unknown generator %q", name)
	}
}

func runCache(out io.Writer, seed uint64, states, requests, cacheSize int, skew float64, policyList string, tr obs.Tracer) error {
	r := prefetch.NewRand(seed)
	cfg := prefetch.Fig7MarkovConfig()
	cfg.States = states
	cfg.SkewAlpha = skew
	if states < cfg.MaxOut {
		cfg.MinOut = max(1, states/4)
		cfg.MaxOut = max(cfg.MinOut, states/2)
	}
	trace, err := prefetch.BuildMarkovTrace(r, cfg, 1, 30, requests)
	if err != nil {
		return err
	}
	// The cache mode ignores unknown names and runs the Fig. 7 planners the
	// user listed; "all" (or the prefetch-only default) runs all five.
	wanted := map[string]bool{}
	for _, name := range strings.Split(policyList, ",") {
		wanted[strings.TrimSpace(name)] = true
	}
	runAll := wanted["all"] || policyList == "none,perfect,kp,skp"
	fmt.Fprintf(out, "%-12s %10s %10s %8s %14s %14s\n", "policy", "mean T", "±95%", "hit%", "prefetch-net", "demand-net")
	track := 0 // one trace track per planner actually run
	for _, planner := range prefetch.Fig7Planners(prefetch.DeltaTheorem3) {
		if !runAll && !wanted[planner.Label] {
			continue
		}
		res, err := sim.RunPrefetchCacheOpts(trace, planner, cacheSize, sim.CacheOptions{Tracer: tr, Track: track})
		if err != nil {
			return err
		}
		track++
		fmt.Fprintf(out, "%-12s %10.4f %10.4f %7.1f%% %14.0f %14.0f\n",
			res.Policy, res.Access.Mean(), res.Access.CI95(), 100*res.HitRate(),
			res.Prefetch, res.Demand)
	}
	return nil
}

func runSession(out io.Writer, seed uint64, states, requests int, skew float64, tr obs.Tracer) error {
	r := prefetch.NewRand(seed)
	cfg := prefetch.MarkovConfig{
		States: states, MinOut: 10, MaxOut: 20, MinViewing: 1, MaxViewing: 20, SkewAlpha: skew,
	}
	if states < 20 {
		cfg.MinOut = max(1, states/4)
		cfg.MaxOut = max(cfg.MinOut, states/2)
	}
	trace, err := prefetch.BuildMarkovTrace(r, cfg, 1, 30, requests)
	if err != nil {
		return err
	}
	planners := []struct {
		planner sim.SessionPlanner
		opts    sim.SessionOptions
	}{
		{sim.PlainPlanner{Policy: sim.NoPrefetch{}}, sim.SessionOptions{}},
		{sim.PlainPlanner{Policy: sim.KPPolicy{}}, sim.SessionOptions{}},
		{sim.PlainPlanner{Policy: sim.SKPPolicy{}}, sim.SessionOptions{}},
		{sim.LookaheadPlanner{}, sim.SessionOptions{}},
		{sim.Depth2Planner{}, sim.SessionOptions{}},
		{sim.Depth2Planner{}, sim.SessionOptions{EffectiveViewing: true}},
	}
	fmt.Fprintf(out, "%-16s %10s %14s\n", "planner", "mean T", "net/request")
	for i, pl := range planners {
		pl.opts.Tracer = tr
		pl.opts.Track = i
		res, err := sim.RunMarkovSession(trace, pl.planner, pl.opts)
		if err != nil {
			return err
		}
		label := res.Policy
		if pl.opts.EffectiveViewing {
			label += "+eff-v"
		}
		fmt.Fprintf(out, "%-16s %10.4f %14.3f\n", label, res.Access.Mean(), res.NetworkBusy/float64(res.Requests))
	}
	return nil
}

// mcOptions bundles the multiclient-mode flags.
type mcOptions struct {
	seed          uint64
	clients       string
	serverConc    int
	serverCache   int
	rounds        int
	reps          int
	shards        int
	discipline    string
	preempt       bool
	weights       string
	rate          float64
	burst         float64
	admitUtil     float64
	admitWindow   float64
	admitDefer    bool
	controller    string
	lambda0       float64
	targetUtil    float64
	predictor     string
	ppmOrder      int
	coldStart     string
	warmCache     bool
	driftEvery    int
	decayHalfLife float64
	mixWeight     float64
	replicas      string
	router        string
	failEvery     float64
	recoverAfter  float64
}

// parseWeights parses "demand:spec" wfq class weights.
func parseWeights(s string) (demand, spec float64, err error) {
	d, sp, ok := strings.Cut(s, ":")
	if ok {
		demand, err = strconv.ParseFloat(strings.TrimSpace(d), 64)
		if err == nil {
			spec, err = strconv.ParseFloat(strings.TrimSpace(sp), 64)
		}
	}
	// Positive-form checks so NaN is rejected too.
	if !ok || err != nil || !(demand > 0) || !(spec > 0) {
		return 0, 0, fmt.Errorf("bad -weights %q (want demand:spec, e.g. 4:1)", s)
	}
	return demand, spec, nil
}

// parseKinds parses a single kind, a comma list, or "all" against a
// canonical kind list; what names the flag in errors.
func parseKinds[K ~string](s, what string, all []K) ([]K, error) {
	if strings.TrimSpace(s) == "all" {
		return all, nil
	}
	var kinds []K
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind := K(part)
		known := false
		for _, k := range all {
			if kind == k {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("unknown %s %q", what, part)
		}
		kinds = append(kinds, kind)
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("no %ss given", what)
	}
	return kinds, nil
}

// parseDisciplines parses the -discipline flag against SchedKinds().
func parseDisciplines(s string) ([]prefetch.SchedKind, error) {
	return parseKinds(s, "discipline", prefetch.SchedKinds())
}

// parseControllers parses the -controller flag against ControllerKinds().
func parseControllers(s string) ([]prefetch.ControllerKind, error) {
	return parseKinds(s, "controller", prefetch.ControllerKinds())
}

// parsePredictors parses the -predictor flag against PredictorKinds().
func parsePredictors(s string) ([]prefetch.PredictorKind, error) {
	return parseKinds(s, "predictor", prefetch.PredictorKinds())
}

// parseRouters parses the -router flag against RouterKinds().
func parseRouters(s string) ([]prefetch.FleetRouterKind, error) {
	return parseKinds(s, "router", prefetch.RouterKinds())
}

// parseCounts parses a single positive count or a comma-separated sweep
// axis; what names the flag in errors.
func parseCounts(list, what string) ([]int, error) {
	var ns []int
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad %s %q", what, part)
		}
		ns = append(ns, n)
	}
	if len(ns) == 0 {
		return nil, fmt.Errorf("no %ss given", what)
	}
	return ns, nil
}

// parseClients parses a single client count or a comma-separated sweep axis.
func parseClients(list string) ([]int, error) { return parseCounts(list, "client count") }

// parseReplicas parses a single replica count or a comma-separated sweep axis.
func parseReplicas(list string) ([]int, error) { return parseCounts(list, "replica count") }

// checkFailureFlags validates the fleet failure regime; positive-form
// checks so NaN is rejected too.
func checkFailureFlags(failEvery, recoverAfter float64) error {
	if !(failEvery >= 0) || math.IsInf(failEvery, 0) {
		return fmt.Errorf("-fail-every must be finite and >= 0 (got %v)", failEvery)
	}
	if !(recoverAfter >= 0) || math.IsInf(recoverAfter, 0) {
		return fmt.Errorf("-recover-after must be finite and >= 0 (got %v)", recoverAfter)
	}
	if failEvery > 0 && !(recoverAfter > 0) {
		return fmt.Errorf("-fail-every needs -recover-after > 0 (failed replicas would never return)")
	}
	return nil
}

// mcConfig validates the multiclient flag values and builds the base
// config (Clients unset — callers pick from ns) plus the parsed sweep
// lists. Shared by the multiclient and fleet modes.
func mcConfig(opt mcOptions) (cfg prefetch.MultiClientConfig, ns []int, kinds []prefetch.SchedKind, ctls []prefetch.ControllerKind, preds []prefetch.PredictorKind, err error) {
	ns, err = parseClients(opt.clients)
	if err != nil {
		return
	}
	kinds, err = parseDisciplines(opt.discipline)
	if err != nil {
		return
	}
	demandW, specW, err := parseWeights(opt.weights)
	if err != nil {
		return
	}
	// SchedConfig treats zero tunables as "use the default", so an explicit
	// -rate 0 would silently become 0.5; refuse it (and NaN) here instead.
	if !(opt.rate > 0) || !(opt.burst > 0) {
		err = fmt.Errorf("-rate and -burst must be positive (got %v, %v)", opt.rate, opt.burst)
		return
	}
	if !(opt.admitWindow > 0) {
		err = fmt.Errorf("-admit-window must be positive (got %v)", opt.admitWindow)
		return
	}
	if opt.admitDefer && !(opt.admitUtil > 0) {
		err = fmt.Errorf("-admit-defer requires -admit-util > 0")
		return
	}
	ctls, err = parseControllers(opt.controller)
	if err != nil {
		return
	}
	// ControllerConfig treats a zero setpoint as "use the default", so an
	// explicit -target-util 0 would silently become 0.7; refuse it (and
	// NaN) here instead.
	if !(opt.targetUtil > 0 && opt.targetUtil < 1) {
		err = fmt.Errorf("-target-util must be in (0, 1) (got %v)", opt.targetUtil)
		return
	}
	preds, err = parsePredictors(opt.predictor)
	if err != nil {
		return
	}
	// PredictConfig treats a zero order as "use the default", so an
	// explicit -ppm-order 0 would silently become 2; refuse it here.
	if opt.ppmOrder < 1 {
		err = fmt.Errorf("-ppm-order must be >= 1 (got %d)", opt.ppmOrder)
		return
	}
	cfg = prefetch.DefaultMultiClientConfig()
	cfg.Seed = opt.seed
	cfg.ServerConcurrency = opt.serverConc
	cfg.ServerCacheSlots = opt.serverCache
	cfg.Rounds = opt.rounds
	cfg.Shards = opt.shards
	cfg.Sched = prefetch.SchedConfig{
		Kind:         kinds[0],
		Preempt:      opt.preempt,
		DemandWeight: demandW,
		SpecWeight:   specW,
		Rate:         opt.rate,
		Burst:        opt.burst,
		AdmitUtil:    opt.admitUtil,
		AdmitWindow:  opt.admitWindow,
		AdmitDefer:   opt.admitDefer,
	}
	cfg.Adaptive = prefetch.ControllerConfig{
		Kind:       ctls[0],
		Lambda0:    opt.lambda0,
		TargetUtil: opt.targetUtil,
	}
	if err = cfg.Adaptive.Validate(); err != nil {
		return
	}
	cfg.Predict = prefetch.PredictConfig{
		Kind:      preds[0],
		Order:     opt.ppmOrder,
		ColdStart: prefetch.PredictorFallback(opt.coldStart),
		HalfLife:  opt.decayHalfLife,
		MixWeight: opt.mixWeight,
	}
	if err = cfg.Predict.Validate(); err != nil {
		return
	}
	cfg.DriftEvery = opt.driftEvery
	cfg.WarmServerCache = opt.warmCache
	if opt.warmCache {
		// Fail the flag combination up front with a CLI-level message
		// (Validate would reject it too, but less readably).
		if opt.serverCache <= 0 {
			err = fmt.Errorf("-warm-cache needs -servercache > 0")
			return
		}
		if len(preds) != 1 || preds[0] != prefetch.PredictorShared {
			err = fmt.Errorf("-warm-cache needs -predictor shared")
			return
		}
	}
	return
}

func runMultiClient(out io.Writer, opt mcOptions, tr obs.Tracer) error {
	cfg, ns, kinds, ctls, preds, err := mcConfig(opt)
	if err != nil {
		return err
	}
	reps := opt.reps
	// Non-default scheduling extends the seed's tables with the
	// discipline-specific columns; the default output stays byte-identical.
	extended := cfg.Sched.Kind != prefetch.SchedFIFO || opt.preempt || opt.admitUtil > 0
	// Non-default speculation control adds the controller summary line; in
	// sweep tables (which carry no λ column) it becomes a header note.
	ctlExtended := ctls[0] != prefetch.ControllerStatic || opt.lambda0 > 0
	ctlNote := ""
	if ctlExtended {
		ctlNote = fmt.Sprintf(", controller %s (λ0 %g)", cfg.Adaptive.Kind, cfg.Adaptive.Lambda0)
	}
	// A non-oracle predictor likewise adds a summary line / header note.
	predExtended := preds[0] != prefetch.PredictorOracle || opt.warmCache
	predNote := ""
	if predExtended {
		predNote = fmt.Sprintf(", predictor %s", cfg.Predict.Kind)
	}
	// A non-stationary workload is flagged in every header; the default
	// (stationary) output stays byte-identical.
	driftNote := ""
	if opt.driftEvery > 0 {
		driftNote = fmt.Sprintf(", drift every %d rounds", opt.driftEvery)
	}

	if len(kinds) > 1 && (len(ctls) > 1 || len(preds) > 1) {
		return fmt.Errorf("sweep one axis at a time: -discipline combines with neither a -controller nor a -predictor list")
	}
	// Sweeps run replicated parallel legs; a single merged trace would be
	// meaningless (and its ordering nondeterministic), so tracing demands
	// one run.
	if tr != nil && (len(ns) > 1 || len(kinds) > 1 || len(ctls) > 1 || len(preds) > 1) {
		return fmt.Errorf("-trace-out/-metrics-out need a single run: drop the sweep axes (clients/discipline/controller/predictor lists)")
	}
	cfg.Tracer = tr
	if len(preds) > 1 && len(ctls) > 1 {
		return runPredictorControllerSweep(out, cfg, ns, preds, ctls, reps, driftNote)
	}
	if len(preds) > 1 {
		return runPredictorSweep(out, cfg, ns, preds, reps, ctlNote+driftNote)
	}
	if len(ctls) > 1 {
		return runControllerSweep(out, cfg, ns, ctls, reps, predNote+driftNote)
	}
	if len(kinds) > 1 {
		return runDisciplineSweep(out, cfg, ns, kinds, reps, ctlNote+predNote+driftNote)
	}

	if len(ns) == 1 {
		cfg.Clients = ns[0]
		cmp, err := prefetch.CompareMultiClient(cfg)
		if err != nil {
			return err
		}
		res := cmp.Prefetch
		fmt.Fprintf(out, "%d clients, server concurrency %d, server cache %d slots, %d rounds each%s\n\n",
			cfg.Clients, cfg.ServerConcurrency, cfg.ServerCacheSlots, cfg.Rounds, driftNote)
		fmt.Fprintf(out, "%-8s %10s %12s %12s %10s %10s\n",
			"client", "mean T", "queue wait", "prefetches", "0-wait%", "improve%")
		for i, pc := range res.PerClient {
			fmt.Fprintf(out, "%-8d %10.4f %12.4f %12d %9.1f%% %9.1f%%\n",
				pc.Client, pc.Access.Mean(), pc.QueueWait.Mean(), pc.PrefetchIssued,
				100*float64(pc.ZeroWaitRounds)/float64(pc.Access.N()),
				100*cmp.ClientImprovement(i))
		}
		var zeroWait int64
		for _, pc := range res.PerClient {
			zeroWait += pc.ZeroWaitRounds
		}
		fmt.Fprintf(out, "\n%-8s %10.4f %12.4f %12s %9.1f%% %9.1f%%\n",
			"all", res.Access.Mean(), res.QueueWait.Mean(), "",
			100*float64(zeroWait)/float64(res.Access.N()), 100*cmp.Improvement())
		fmt.Fprintf(out, "server utilization %.1f%%\n", 100*res.Utilization())
		if cfg.ServerCacheSlots > 0 {
			fmt.Fprintf(out, "server cache hit rate %.1f%%\n", 100*res.HitRate())
		}
		if extended {
			fmt.Fprintf(out, "\ndiscipline %s: demand access %.4f, speculative throughput %.4f/s\n",
				res.Discipline, res.DemandAccess.Mean(), res.SpecThroughput())
			if res.Preemptions > 0 {
				fmt.Fprintf(out, "preempted speculative transfers: %d\n", res.Preemptions)
			}
			if opt.admitUtil > 0 {
				fmt.Fprintf(out, "admission: %d dropped, %d deferred\n", res.PrefetchDropped, res.PrefetchDeferred)
			}
		}
		if ctlExtended {
			fmt.Fprintf(out, "\ncontroller %s: mean λ %.3f, max λ %.3f, demand access %.4f\n",
				res.Controller, res.Lambda.Mean(), res.Lambda.Max(), res.DemandAccess.Mean())
		}
		if predExtended {
			fmt.Fprintf(out, "\npredictor %s: L1 error %.3f, wasted-prefetch %.1f%%, hit ratio %.1f%% (demand access %.4f)\n",
				res.Predictor, res.L1Error.Mean(), 100*res.WastedPrefetchFraction(),
				100*res.HitRatio(), res.DemandAccess.Mean())
			if opt.warmCache {
				fmt.Fprintf(out, "cache warming: %d pre-admitted, %d warm hits\n",
					res.WarmInserted, res.WarmHits)
			}
		}
		return nil
	}

	points, err := prefetch.SweepMultiClient(cfg, ns, reps, 0)
	if err != nil {
		return err
	}
	if extended {
		fmt.Fprintf(out, "sweep over clients, discipline %s%s%s%s, server concurrency %d, %d reps, %d rounds each\n\n",
			cfg.Sched.Kind, ctlNote, predNote, driftNote, cfg.ServerConcurrency, reps, cfg.Rounds)
		fmt.Fprintf(out, "%-8s %10s %10s %12s %10s %10s %10s\n",
			"clients", "demand T", "mean T", "queue wait", "spec/s", "util%", "improve%")
		for _, p := range points {
			fmt.Fprintf(out, "%-8d %10.4f %10.4f %12.4f %10.4f %9.1f%% %9.1f%%\n",
				p.Clients, p.DemandAccess.Mean(), p.Access.Mean(), p.QueueWait.Mean(),
				p.SpecThroughput.Mean(), 100*p.Utilization.Mean(), 100*p.Improvement.Mean())
		}
		return nil
	}
	fmt.Fprintf(out, "sweep over clients%s%s%s, server concurrency %d, %d reps, %d rounds each\n\n",
		ctlNote, predNote, driftNote, cfg.ServerConcurrency, reps, cfg.Rounds)
	fmt.Fprintf(out, "%-8s %10s %10s %12s %10s %10s\n",
		"clients", "mean T", "±95%", "queue wait", "util%", "improve%")
	for _, p := range points {
		fmt.Fprintf(out, "%-8d %10.4f %10.4f %12.4f %9.1f%% %9.1f%%\n",
			p.Clients, p.Access.Mean(), p.Access.CI95(), p.QueueWait.Mean(),
			100*p.Utilization.Mean(), 100*p.Improvement.Mean())
	}
	return nil
}

// runDisciplineSweep tabulates every requested discipline over the
// identical seed-replicated workload, one table per client count.
// ctlNote is the caller's non-default-controller header note ("" when
// the static λ = 0 default is active).
func runDisciplineSweep(out io.Writer, cfg prefetch.MultiClientConfig, ns []int, kinds []prefetch.SchedKind, reps int, ctlNote string) error {
	for i, n := range ns {
		if i > 0 {
			fmt.Fprintln(out)
		}
		cfg.Clients = n
		points, err := prefetch.SweepMultiClientDisciplines(cfg, kinds, reps, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "discipline sweep, %d clients%s, server concurrency %d, %d reps, %d rounds each\n\n",
			n, ctlNote, cfg.ServerConcurrency, reps, cfg.Rounds)
		fmt.Fprintf(out, "%-10s %10s %10s %12s %10s %8s %8s %10s\n",
			"discipline", "demand T", "mean T", "queue wait", "spec/s", "drops", "preempt", "improve%")
		for _, p := range points {
			fmt.Fprintf(out, "%-10s %10.4f %10.4f %12.4f %10.4f %8d %8d %9.1f%%\n",
				p.Kind, p.DemandAccess.Mean(), p.Access.Mean(), p.QueueWait.Mean(),
				p.SpecThroughput.Mean(), p.PrefetchDropped, p.Preemptions,
				100*p.Improvement.Mean())
		}
	}
	return nil
}

// runControllerSweep tabulates every requested λ controller over the
// identical seed-replicated workload, one table per client count.
// predNote is the caller's non-default-predictor header note ("" when the
// oracle default is active).
func runControllerSweep(out io.Writer, cfg prefetch.MultiClientConfig, ns []int, ctls []prefetch.ControllerKind, reps int, predNote string) error {
	for i, n := range ns {
		if i > 0 {
			fmt.Fprintln(out)
		}
		cfg.Clients = n
		points, err := prefetch.SweepMultiClientControllers(cfg, ctls, reps, 0)
		if err != nil {
			return err
		}
		disc := cfg.Sched.Kind
		if disc == "" {
			disc = prefetch.SchedFIFO
		}
		fmt.Fprintf(out, "controller sweep, %d clients, discipline %s%s, server concurrency %d, %d reps, %d rounds each\n\n",
			n, disc, predNote, cfg.ServerConcurrency, reps, cfg.Rounds)
		fmt.Fprintf(out, "%-15s %10s %10s %12s %8s %10s %8s %10s\n",
			"controller", "demand T", "mean T", "queue wait", "mean λ", "spec/s", "drops", "improve%")
		for _, p := range points {
			fmt.Fprintf(out, "%-15s %10.4f %10.4f %12.4f %8.3f %10.4f %8d %9.1f%%\n",
				p.Kind, p.DemandAccess.Mean(), p.Access.Mean(), p.QueueWait.Mean(),
				p.Lambda.Mean(), p.SpecThroughput.Mean(), p.PrefetchDropped,
				100*p.Improvement.Mean())
		}
	}
	return nil
}

// runPredictorSweep tabulates every requested prediction source over the
// identical seed-replicated workload, one table per client count —
// the oracle-vs-learned gap under contention. ctlNote is the caller's
// non-default-controller header note.
func runPredictorSweep(out io.Writer, cfg prefetch.MultiClientConfig, ns []int, preds []prefetch.PredictorKind, reps int, ctlNote string) error {
	for i, n := range ns {
		if i > 0 {
			fmt.Fprintln(out)
		}
		cfg.Clients = n
		points, err := prefetch.SweepMultiClientPredictors(cfg, preds, reps, 0)
		if err != nil {
			return err
		}
		disc := cfg.Sched.Kind
		if disc == "" {
			disc = prefetch.SchedFIFO
		}
		fmt.Fprintf(out, "predictor sweep, %d clients, discipline %s%s, server concurrency %d, %d reps, %d rounds each\n\n",
			n, disc, ctlNote, cfg.ServerConcurrency, reps, cfg.Rounds)
		fmt.Fprintf(out, "%-10s %10s %10s %8s %8s %8s %10s %10s\n",
			"predictor", "demand T", "mean T", "L1 err", "waste%", "hit%", "spec/s", "improve%")
		for _, p := range points {
			fmt.Fprintf(out, "%-10s %10.4f %10.4f %8.3f %7.1f%% %7.1f%% %10.4f %9.1f%%\n",
				p.Kind, p.DemandAccess.Mean(), p.Access.Mean(), p.L1Error.Mean(),
				100*p.WastedFraction.Mean(), 100*p.HitRatio.Mean(),
				p.SpecThroughput.Mean(), 100*p.Improvement.Mean())
		}
	}
	return nil
}

// runPredictorControllerSweep prints the controller×predictor grid, one
// Pareto table per controller per client count: within a controller the
// rows are predictors and the frontier marker (*) flags the cells
// non-dominated on (demand latency ↓, speculative throughput ↑) — the
// view that exposes a weak predictor even when an adaptive λ controller
// hides it in raw latency.
func runPredictorControllerSweep(out io.Writer, cfg prefetch.MultiClientConfig, ns []int, preds []prefetch.PredictorKind, ctls []prefetch.ControllerKind, reps int, note string) error {
	for i, n := range ns {
		if i > 0 {
			fmt.Fprintln(out)
		}
		cfg.Clients = n
		points, err := prefetch.SweepMultiClientPredictorControllers(cfg, preds, ctls, reps, 0)
		if err != nil {
			return err
		}
		disc := cfg.Sched.Kind
		if disc == "" {
			disc = prefetch.SchedFIFO
		}
		fmt.Fprintf(out, "controller × predictor sweep, %d clients, discipline %s%s, server concurrency %d, %d reps, %d rounds each\n",
			n, disc, note, cfg.ServerConcurrency, reps, cfg.Rounds)
		fmt.Fprintf(out, "(* = on the controller's (demand T, spec/s) Pareto frontier)\n")
		for ci, ctl := range ctls {
			fmt.Fprintf(out, "\ncontroller %s\n", ctl)
			fmt.Fprintf(out, "%-12s %10s %10s %8s %8s %8s %10s %7s\n",
				"predictor", "demand T", "mean T", "mean λ", "L1 err", "waste%", "spec/s", "pareto")
			for pi := range preds {
				p := points[ci*len(preds)+pi]
				mark := ""
				if p.Pareto {
					mark = "*"
				}
				fmt.Fprintf(out, "%-12s %10.4f %10.4f %8.3f %8.3f %7.1f%% %10.4f %7s\n",
					p.Predictor, p.DemandAccess.Mean(), p.Access.Mean(), p.Lambda.Mean(),
					p.L1Error.Mean(), 100*p.WastedFraction.Mean(), p.SpecThroughput.Mean(), mark)
			}
		}
	}
	return nil
}

// runFleet plays the multiclient workload against an R-replica fleet
// behind a pluggable router, optionally under failure injection. A
// single -router and -replicas value prints the per-replica table; a
// comma list on either sweeps router × replicas.
func runFleet(out io.Writer, opt mcOptions, tr obs.Tracer) error {
	base, ns, kinds, ctls, preds, err := mcConfig(opt)
	if err != nil {
		return err
	}
	if len(ns) > 1 || len(kinds) > 1 || len(ctls) > 1 || len(preds) > 1 {
		return fmt.Errorf("fleet mode sweeps -router and -replicas only: give single -clients/-discipline/-controller/-predictor values")
	}
	routers, err := parseRouters(opt.router)
	if err != nil {
		return err
	}
	replicas, err := parseReplicas(opt.replicas)
	if err != nil {
		return err
	}
	if err := checkFailureFlags(opt.failEvery, opt.recoverAfter); err != nil {
		return err
	}
	base.Clients = ns[0]
	cfg := prefetch.FleetConfig{
		Base:         base,
		Replicas:     replicas[0],
		Router:       routers[0],
		FailEvery:    opt.failEvery,
		RecoverAfter: opt.recoverAfter,
	}
	failNote := ""
	if opt.failEvery > 0 {
		failNote = fmt.Sprintf(", fail every %g, recover after %g", opt.failEvery, opt.recoverAfter)
	}

	if len(routers) > 1 || len(replicas) > 1 {
		if tr != nil {
			return fmt.Errorf("-trace-out/-metrics-out need a single run: drop the -router/-replicas lists")
		}
		return runFleetSweep(out, cfg, routers, replicas, opt.reps, failNote)
	}

	cfg.Base.Tracer = tr
	res, err := prefetch.RunFleet(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "fleet: %d replicas, router %s, %d clients, server concurrency %d per replica, %d rounds each%s\n\n",
		res.Replicas, res.Router, res.Clients, res.Concurrency, cfg.Base.Rounds, failNote)
	fmt.Fprintf(out, "%-8s %9s %9s %10s %8s %6s %9s %6s %10s\n",
		"replica", "requests", "cachehit", "busy", "spec", "fails", "recovers", "lost", "downtime")
	for _, rr := range res.PerReplica {
		fmt.Fprintf(out, "%-8d %9d %9d %10.2f %8d %6d %9d %6d %10.2f\n",
			rr.Replica+1, rr.Requests, rr.CacheHits, rr.Busy, rr.SpecCompleted,
			rr.Failures, rr.Recoveries, rr.Lost, rr.Downtime)
	}
	fmt.Fprintf(out, "\ndemand access %.4f, mean access %.4f, queue wait %.4f\n",
		res.DemandAccess.Mean(), res.Access.Mean(), res.QueueWait.Mean())
	fmt.Fprintf(out, "fleet utilization %.1f%%", 100*res.Utilization())
	if cfg.Base.ServerCacheSlots > 0 {
		fmt.Fprintf(out, ", cache hit rate %.1f%%", 100*res.HitRate())
	}
	fmt.Fprintln(out)
	if opt.failEvery > 0 {
		fmt.Fprintf(out, "availability %.1f%%: %d failures, %d recoveries, %d demands re-routed, %d transfers lost, downtime %.2f\n",
			100*res.Availability(), res.Failures, res.Recoveries, res.ReRoutes, res.LostTransfers, res.Downtime)
	}
	return nil
}

// runFleetSweep prints the fleet's headline table: router kind ×
// replica count under the configured failure regime, router-major.
func runFleetSweep(out io.Writer, cfg prefetch.FleetConfig, routers []prefetch.FleetRouterKind, replicas []int, reps int, failNote string) error {
	points, err := prefetch.SweepFleetRouters(cfg, routers, replicas, reps, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "fleet sweep, %d clients, discipline %s, server concurrency %d per replica, %d reps, %d rounds each%s\n\n",
		cfg.Base.Clients, cfg.Base.Sched.Kind, cfg.Base.ServerConcurrency, reps, cfg.Base.Rounds, failNote)
	fmt.Fprintf(out, "%-13s %9s %10s %10s %12s %8s %9s %6s\n",
		"router", "replicas", "demand T", "mean T", "queue wait", "avail%", "reroutes", "lost")
	for _, p := range points {
		fmt.Fprintf(out, "%-13s %9s %10.4f %10.4f %12.4f %7.1f%% %9d %6d\n",
			p.Labels[0], p.Labels[1], p.DemandAccess.Mean(), p.Access.Mean(),
			p.QueueWait.Mean(), 100*p.Availability.Mean(), p.ReRoutes, p.LostTransfers)
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
