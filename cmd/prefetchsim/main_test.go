package main

import (
	"bytes"
	"errors"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"prefetch/internal/obs"
)

// TestMain lets the test binary impersonate the real prefetchsim process
// when re-exec'd with PREFETCHSIM_BE_MAIN=1, so tests can assert on the
// actual process exit status rather than only on run()'s error value.
func TestMain(m *testing.M) {
	if os.Getenv("PREFETCHSIM_BE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runOut drives run() and returns its stdout.
func runOut(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestRunPrefetchOnlyMode(t *testing.T) {
	out := runOut(t, "-mode", "prefetch-only", "-n", "5", "-iters", "300", "-policies", "none,skp")
	for _, want := range []string{"policy", "mean T", "none", "skp"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunPrefetchOnlyRecordReplay(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	runOut(t, "-mode", "prefetch-only", "-n", "5", "-iters", "200", "-policies", "skp", "-record", trace)
	out := runOut(t, "-mode", "prefetch-only", "-replay", trace, "-policies", "skp")
	if !strings.Contains(out, "skp") {
		t.Errorf("replay output missing skp:\n%s", out)
	}
}

func TestRunCacheMode(t *testing.T) {
	out := runOut(t, "-mode", "cache", "-states", "30", "-requests", "500", "-cachesize", "10", "-policies", "all")
	for _, want := range []string{"policy", "hit%", "SKP+Pr"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSessionMode(t *testing.T) {
	out := runOut(t, "-mode", "session", "-states", "15", "-requests", "150")
	for _, want := range []string{"planner", "skp-depth2", "net/request"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMultiClientMode(t *testing.T) {
	out := runOut(t, "-mode", "multiclient", "-clients", "2", "-rounds", "30", "-serverconc", "2", "-servercache", "20")
	for _, want := range []string{"client", "queue wait", "improve%", "server utilization", "server cache hit rate", "all"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMultiClientSweep(t *testing.T) {
	out := runOut(t, "-mode", "multiclient", "-clients", "1,2", "-rounds", "20", "-reps", "2")
	for _, want := range []string{"sweep over clients", "clients", "util%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if got, want := len(lines), 5; got != want {
		t.Errorf("sweep printed %d lines, want %d:\n%s", got, want, out)
	}
}

func TestRunHelpSucceeds(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-h"}, &sb); err != nil {
		t.Fatalf("run(-h): %v", err)
	}
	if !strings.Contains(sb.String(), "Usage of prefetchsim") {
		t.Errorf("help output missing usage:\n%s", sb.String())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cases := [][]string{
		{"-mode", "nope"},
		{"-mode", "prefetch-only", "-policies", "unknown"},
		{"-mode", "prefetch-only", "-gen", "unknown"},
		{"-mode", "multiclient", "-clients", "zero"},
		{"-mode", "multiclient", "-clients", ""},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) accepted bad input", args)
		}
	}
}

func TestRunMultiClientDisciplines(t *testing.T) {
	for _, disc := range []string{"priority", "wfq", "shaped"} {
		out := runOut(t, "-mode", "multiclient", "-clients", "3", "-rounds", "25", "-discipline", disc)
		if !strings.Contains(out, "discipline "+disc) {
			t.Errorf("%s output missing discipline line:\n%s", disc, out)
		}
		if !strings.Contains(out, "demand access") {
			t.Errorf("%s output missing demand access:\n%s", disc, out)
		}
	}
}

func TestRunMultiClientDisciplineDeterminism(t *testing.T) {
	for _, disc := range []string{"fifo", "priority", "wfq", "shaped"} {
		args := []string{"-mode", "multiclient", "-clients", "3", "-rounds", "25", "-discipline", disc, "-seed", "9"}
		if a, b := runOut(t, args...), runOut(t, args...); a != b {
			t.Errorf("%s: two identical invocations differ:\n%s\n---\n%s", disc, a, b)
		}
	}
}

func TestRunMultiClientShardsFlag(t *testing.T) {
	// -shards is a parallelism hint: any value must print byte-identical
	// output (shard 1 vs 7 vs auto), and a negative value is refused.
	args := []string{"-mode", "multiclient", "-clients", "3", "-rounds", "25", "-seed", "9"}
	want := runOut(t, append(args, "-shards", "1")...)
	for _, shards := range []string{"0", "7"} {
		if got := runOut(t, append(args, "-shards", shards)...); got != want {
			t.Errorf("-shards %s output differs from -shards 1:\n%s\n---\n%s", shards, got, want)
		}
	}
	if err := run(append(args, "-shards", "-2"), io.Discard); err == nil {
		t.Error("negative -shards accepted")
	}
}

func TestRunMultiClientDisciplineSweep(t *testing.T) {
	out := runOut(t, "-mode", "multiclient", "-clients", "3", "-rounds", "20", "-reps", "2", "-discipline", "all")
	for _, want := range []string{"discipline sweep", "demand T", "spec/s", "fifo", "priority", "wfq", "shaped"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMultiClientPreemptAndAdmission(t *testing.T) {
	out := runOut(t, "-mode", "multiclient", "-clients", "4", "-rounds", "30",
		"-discipline", "priority", "-preempt", "-admit-util", "0.6", "-admit-window", "25")
	for _, want := range []string{"discipline priority", "admission:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMultiClientWeights(t *testing.T) {
	out := runOut(t, "-mode", "multiclient", "-clients", "3", "-rounds", "20", "-discipline", "wfq", "-weights", "8:1")
	if !strings.Contains(out, "discipline wfq") {
		t.Errorf("output missing wfq discipline line:\n%s", out)
	}
}

func TestRunMultiClientBadScheduling(t *testing.T) {
	cases := [][]string{
		{"-mode", "multiclient", "-discipline", "lifo"},
		{"-mode", "multiclient", "-discipline", ""},
		{"-mode", "multiclient", "-weights", "4"},
		{"-mode", "multiclient", "-weights", "0:1"},
		{"-mode", "multiclient", "-discipline", "fifo", "-preempt"}, // preempt needs priority
		{"-mode", "multiclient", "-admit-util", "1.5"},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) accepted bad scheduling input", args)
		}
	}
}

func TestRunMultiClientDisciplineClientSweep(t *testing.T) {
	out := runOut(t, "-mode", "multiclient", "-clients", "2,3", "-rounds", "20", "-reps", "2", "-discipline", "priority")
	for _, want := range []string{"discipline priority", "demand T", "spec/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("discipline client-sweep output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMultiClientBadShaping(t *testing.T) {
	for _, args := range [][]string{
		{"-mode", "multiclient", "-rate", "0"},
		{"-mode", "multiclient", "-burst", "-1"},
		{"-mode", "multiclient", "-admit-window", "0"},
	} {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) accepted bad shaping input", args)
		}
	}
}

func TestRunMultiClientNaNRejected(t *testing.T) {
	for _, args := range [][]string{
		{"-mode", "multiclient", "-discipline", "wfq", "-weights", "NaN:1"},
		{"-mode", "multiclient", "-discipline", "shaped", "-rate", "NaN"},
		{"-mode", "multiclient", "-admit-util", "NaN"},
	} {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) accepted NaN input", args)
		}
	}
}

func TestRunMultiClientAdmitDeferRequiresUtil(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-mode", "multiclient", "-admit-defer"}, &sb); err == nil {
		t.Error("-admit-defer without -admit-util was accepted as a silent no-op")
	}
}

// exitStatus re-execs the test binary as prefetchsim with args and
// returns the process exit code.
func exitStatus(t *testing.T, args ...string) int {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "PREFETCHSIM_BE_MAIN=1")
	err := cmd.Run()
	if err == nil {
		return 0
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("re-exec %v: %v", args, err)
	}
	return exitErr.ExitCode()
}

// TestExitStatusUnknownDiscipline: an unknown -discipline or -controller
// value must exit non-zero in EVERY mode — including the modes that do
// not consume the flag, where it used to be silently ignored (exit 0).
func TestExitStatusUnknownDiscipline(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec test")
	}
	bad := [][]string{
		{"-mode", "multiclient", "-clients", "2", "-rounds", "5", "-discipline", "lifo"},
		{"-mode", "prefetch-only", "-discipline", "lifo"},
		{"-mode", "cache", "-discipline", "lifo"},
		{"-mode", "prefetch-only", "-controller", "pid"},
		{"-mode", "multiclient", "-clients", "2", "-rounds", "5", "-controller", "pid"},
		{"-mode", "nope"},
	}
	for _, args := range bad {
		if code := exitStatus(t, args...); code == 0 {
			t.Errorf("prefetchsim %v exited 0, want non-zero", args)
		}
	}
	ok := [][]string{
		{"-mode", "prefetch-only", "-n", "4", "-iters", "50", "-policies", "skp"},
		{"-h"},
	}
	for _, args := range ok {
		if code := exitStatus(t, args...); code != 0 {
			t.Errorf("prefetchsim %v exited %d, want 0", args, code)
		}
	}
}

// TestRunRejectsIgnoredBadFlagValues: the same validation at the run()
// level, so the fast in-process tests cover every mode too.
func TestRunRejectsIgnoredBadFlagValues(t *testing.T) {
	for _, args := range [][]string{
		{"-mode", "prefetch-only", "-discipline", "lifo"},
		{"-mode", "cache", "-discipline", ""},
		{"-mode", "session", "-controller", "pid"},
		{"-mode", "prefetch-only", "-controller", ""},
	} {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) accepted a bad flag value for an unused flag", args)
		}
	}
}

func TestRunMultiClientController(t *testing.T) {
	out := runOut(t, "-mode", "multiclient", "-clients", "4", "-rounds", "30", "-controller", "aimd")
	for _, want := range []string{"controller aimd", "mean λ", "demand access"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// A static controller with a non-zero λ0 also gets the summary line.
	out = runOut(t, "-mode", "multiclient", "-clients", "3", "-rounds", "20", "-lambda0", "0.5")
	if !strings.Contains(out, "controller static") {
		t.Errorf("output missing static controller line:\n%s", out)
	}
}

func TestRunMultiClientControllerSweep(t *testing.T) {
	out := runOut(t, "-mode", "multiclient", "-clients", "3", "-rounds", "20", "-reps", "2", "-controller", "all")
	for _, want := range []string{"controller sweep", "mean λ", "static", "aimd", "target-util", "delay-gradient"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMultiClientControllerDeterminism(t *testing.T) {
	for _, ctl := range []string{"aimd", "target-util", "delay-gradient"} {
		args := []string{"-mode", "multiclient", "-clients", "3", "-rounds", "25", "-controller", ctl, "-seed", "9"}
		if a, b := runOut(t, args...), runOut(t, args...); a != b {
			t.Errorf("%s: two identical invocations differ:\n%s\n---\n%s", ctl, a, b)
		}
	}
}

func TestRunMultiClientBadController(t *testing.T) {
	cases := [][]string{
		{"-mode", "multiclient", "-controller", "pid"},
		{"-mode", "multiclient", "-controller", ""},
		{"-mode", "multiclient", "-lambda0", "-1"},
		{"-mode", "multiclient", "-lambda0", "NaN"},
		{"-mode", "multiclient", "-target-util", "0"},
		{"-mode", "multiclient", "-target-util", "1.2"},
		{"-mode", "multiclient", "-target-util", "NaN"},
		{"-mode", "multiclient", "-discipline", "all", "-controller", "all"}, // one axis at a time
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) accepted bad controller input", args)
		}
	}
}

func TestRunMultiClientControllerWithDiscipline(t *testing.T) {
	out := runOut(t, "-mode", "multiclient", "-clients", "3", "-rounds", "20",
		"-discipline", "priority", "-controller", "aimd")
	for _, want := range []string{"discipline priority", "controller aimd"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Discipline sweep under a fixed adaptive controller.
	out = runOut(t, "-mode", "multiclient", "-clients", "3", "-rounds", "15", "-reps", "2",
		"-discipline", "all", "-controller", "aimd")
	if !strings.Contains(out, "discipline sweep") {
		t.Errorf("discipline sweep missing under adaptive controller:\n%s", out)
	}
}

// TestRunMultiClientControllerClientSweep: a non-default controller must
// be visible in the multi-N sweep output (both table variants) and in
// the discipline sweep header.
func TestRunMultiClientControllerClientSweep(t *testing.T) {
	out := runOut(t, "-mode", "multiclient", "-clients", "2,3", "-rounds", "15", "-reps", "2", "-controller", "aimd")
	if !strings.Contains(out, "controller aimd") {
		t.Errorf("plain client sweep hides the active controller:\n%s", out)
	}
	out = runOut(t, "-mode", "multiclient", "-clients", "2,3", "-rounds", "15", "-reps", "2",
		"-discipline", "priority", "-controller", "aimd")
	if !strings.Contains(out, "controller aimd") {
		t.Errorf("extended client sweep hides the active controller:\n%s", out)
	}
	out = runOut(t, "-mode", "multiclient", "-clients", "3", "-rounds", "15", "-reps", "2",
		"-discipline", "all", "-controller", "aimd")
	if !strings.Contains(out, "controller aimd") {
		t.Errorf("discipline sweep hides the active controller:\n%s", out)
	}
	// The default static λ=0 run must stay byte-identical: no note.
	out = runOut(t, "-mode", "multiclient", "-clients", "1,2", "-rounds", "20", "-reps", "2")
	if strings.Contains(out, "controller") {
		t.Errorf("default sweep grew a controller note:\n%s", out)
	}
}

// TestRunMultiClientPredictorOracleMatchesDefault: `-predictor oracle`
// must produce byte-identical output to the default invocation — the
// prediction subsystem replays the pre-subsystem timelines bit for bit.
func TestRunMultiClientPredictorOracleMatchesDefault(t *testing.T) {
	base := []string{"-mode", "multiclient", "-clients", "4", "-rounds", "30", "-seed", "9"}
	for _, extra := range [][]string{
		nil,
		{"-discipline", "priority"},
		{"-controller", "aimd"},
		{"-discipline", "wfq", "-controller", "target-util"},
	} {
		def := runOut(t, append(append([]string{}, base...), extra...)...)
		orc := runOut(t, append(append([]string{}, base...), append(extra, "-predictor", "oracle")...)...)
		if def != orc {
			t.Errorf("-predictor oracle diverged from default (%v):\n%s\n---\n%s", extra, def, orc)
		}
	}
}

func TestRunMultiClientPredictor(t *testing.T) {
	out := runOut(t, "-mode", "multiclient", "-clients", "4", "-rounds", "30", "-predictor", "depgraph")
	for _, want := range []string{"predictor depgraph", "L1 error", "wasted-prefetch", "hit ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The ppm predictor takes its order from -ppm-order.
	out = runOut(t, "-mode", "multiclient", "-clients", "3", "-rounds", "20", "-predictor", "ppm", "-ppm-order", "3")
	if !strings.Contains(out, "predictor ppm") {
		t.Errorf("output missing ppm predictor line:\n%s", out)
	}
}

func TestRunMultiClientPredictorSweep(t *testing.T) {
	out := runOut(t, "-mode", "multiclient", "-clients", "3", "-rounds", "20", "-reps", "2", "-predictor", "all")
	for _, want := range []string{"predictor sweep", "L1 err", "waste%", "hit%", "oracle", "depgraph", "ppm", "shared"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMultiClientPredictorControllerGrid(t *testing.T) {
	out := runOut(t, "-mode", "multiclient", "-clients", "3", "-rounds", "20", "-reps", "2",
		"-predictor", "oracle,depgraph", "-controller", "static,aimd")
	for _, want := range []string{"controller × predictor sweep", "Pareto frontier", "controller static", "controller aimd", "pareto", "*"} {
		if !strings.Contains(out, want) {
			t.Errorf("grid output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMultiClientWarmCache(t *testing.T) {
	out := runOut(t, "-mode", "multiclient", "-clients", "4", "-rounds", "30",
		"-predictor", "shared", "-servercache", "20", "-warm-cache")
	for _, want := range []string{"predictor shared", "cache warming", "pre-admitted", "warm hits"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMultiClientPredictorDeterminism(t *testing.T) {
	for _, pred := range []string{"depgraph", "ppm", "shared"} {
		args := []string{"-mode", "multiclient", "-clients", "3", "-rounds", "25", "-predictor", pred, "-seed", "9"}
		if a, b := runOut(t, args...), runOut(t, args...); a != b {
			t.Errorf("%s: two identical invocations differ:\n%s\n---\n%s", pred, a, b)
		}
	}
}

func TestRunMultiClientBadPredictor(t *testing.T) {
	cases := [][]string{
		{"-mode", "multiclient", "-predictor", "lstm"},
		{"-mode", "multiclient", "-predictor", ""},
		{"-mode", "multiclient", "-predictor", "ppm", "-ppm-order", "0"},
		{"-mode", "multiclient", "-predictor", "depgraph", "-cold-start", "oracle"},
		{"-mode", "multiclient", "-warm-cache"},                             // needs shared + cache
		{"-mode", "multiclient", "-predictor", "shared", "-warm-cache"},     // needs cache
		{"-mode", "multiclient", "-servercache", "20", "-warm-cache"},       // needs shared
		{"-mode", "multiclient", "-discipline", "all", "-predictor", "all"}, // axis conflict
		// Unused-flag validation in other modes.
		{"-mode", "prefetch-only", "-predictor", "lstm"},
		{"-mode", "cache", "-predictor", ""},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) accepted bad predictor input", args)
		}
	}
}

// TestRunMultiClientPredictorWithDiscipline: a fixed learned predictor
// must be visible in discipline sweeps and client sweeps.
func TestRunMultiClientPredictorWithDiscipline(t *testing.T) {
	out := runOut(t, "-mode", "multiclient", "-clients", "3", "-rounds", "15", "-reps", "2",
		"-discipline", "all", "-predictor", "depgraph")
	for _, want := range []string{"discipline sweep", "predictor depgraph"} {
		if !strings.Contains(out, want) {
			t.Errorf("discipline sweep output missing %q:\n%s", want, out)
		}
	}
	out = runOut(t, "-mode", "multiclient", "-clients", "2,3", "-rounds", "15", "-reps", "2", "-predictor", "depgraph")
	if !strings.Contains(out, "predictor depgraph") {
		t.Errorf("client sweep hides the active predictor:\n%s", out)
	}
	out = runOut(t, "-mode", "multiclient", "-clients", "3", "-rounds", "15", "-reps", "2",
		"-controller", "all", "-predictor", "depgraph")
	if !strings.Contains(out, "predictor depgraph") {
		t.Errorf("controller sweep hides the active predictor:\n%s", out)
	}
}

// TestRunMultiClientDrift: a non-stationary run is flagged in every
// header, replays bit for bit, and the default (stationary) output grows
// no drift note.
func TestRunMultiClientDrift(t *testing.T) {
	args := []string{"-mode", "multiclient", "-clients", "3", "-rounds", "25", "-drift-every", "5", "-seed", "9"}
	out := runOut(t, args...)
	if !strings.Contains(out, "drift every 5 rounds") {
		t.Errorf("drift run missing the drift note:\n%s", out)
	}
	if again := runOut(t, args...); out != again {
		t.Errorf("drifting run did not replay:\n%s\n---\n%s", out, again)
	}
	out = runOut(t, "-mode", "multiclient", "-clients", "3", "-rounds", "25", "-seed", "9")
	if strings.Contains(out, "drift") {
		t.Errorf("default run grew a drift note:\n%s", out)
	}
	// The note shows up in sweep headers too.
	out = runOut(t, "-mode", "multiclient", "-clients", "2,3", "-rounds", "15", "-reps", "2", "-drift-every", "5")
	if !strings.Contains(out, "drift every 5 rounds") {
		t.Errorf("client sweep hides the drift note:\n%s", out)
	}
	out = runOut(t, "-mode", "multiclient", "-clients", "3", "-rounds", "15", "-reps", "2",
		"-drift-every", "5", "-predictor", "oracle,decay", "-controller", "static,aimd")
	if !strings.Contains(out, "drift every 5 rounds") {
		t.Errorf("grid sweep hides the drift note:\n%s", out)
	}
}

// TestRunMultiClientDriftPredictors: the drift-tracking predictors run
// end to end, alone and in sweeps.
func TestRunMultiClientDriftPredictors(t *testing.T) {
	for _, pred := range []string{"decay", "mixture", "ppm-escape"} {
		out := runOut(t, "-mode", "multiclient", "-clients", "3", "-rounds", "25",
			"-drift-every", "8", "-predictor", pred)
		if !strings.Contains(out, "predictor "+pred) {
			t.Errorf("output missing %q predictor line:\n%s", pred, out)
		}
	}
	out := runOut(t, "-mode", "multiclient", "-clients", "3", "-rounds", "20", "-reps", "2", "-predictor", "all")
	for _, want := range []string{"decay", "mixture", "ppm-escape"} {
		if !strings.Contains(out, want) {
			t.Errorf("predictor sweep missing %q:\n%s", want, out)
		}
	}
	out = runOut(t, "-mode", "multiclient", "-clients", "3", "-rounds", "25",
		"-predictor", "decay", "-decay-half-life", "60")
	if !strings.Contains(out, "predictor decay") {
		t.Errorf("half-life run missing decay line:\n%s", out)
	}
	out = runOut(t, "-mode", "multiclient", "-clients", "3", "-rounds", "25",
		"-predictor", "mixture", "-mix-weight", "0.5")
	if !strings.Contains(out, "predictor mixture") {
		t.Errorf("mix-weight run missing mixture line:\n%s", out)
	}
}

// TestRunRejectsBadDriftFlags: the drift and drift-predictor tunables
// are validated in every mode — a typo'd value must never be silently
// ignored by a mode that does not consume it.
func TestRunRejectsBadDriftFlags(t *testing.T) {
	cases := [][]string{
		{"-mode", "multiclient", "-drift-every", "-1"},
		{"-mode", "prefetch-only", "-drift-every", "-3"},
		{"-mode", "multiclient", "-decay-half-life", "0"},
		{"-mode", "multiclient", "-decay-half-life", "-5"},
		{"-mode", "multiclient", "-decay-half-life", "NaN"},
		{"-mode", "multiclient", "-decay-half-life", "Inf"},
		{"-mode", "cache", "-decay-half-life", "0"},
		{"-mode", "prefetch-only", "-decay-half-life", "Inf"},
		{"-mode", "multiclient", "-mix-weight", "0"},
		{"-mode", "multiclient", "-mix-weight", "1"},
		{"-mode", "multiclient", "-mix-weight", "NaN"},
		{"-mode", "session", "-mix-weight", "2"},
		{"-mode", "multiclient", "-predictor", "decay", "-ppm-order", "0"},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) accepted bad drift input", args)
		}
	}
}

// TestExitStatusBadDriftFlags: the same validation at the process level.
func TestExitStatusBadDriftFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec test")
	}
	bad := [][]string{
		{"-mode", "prefetch-only", "-drift-every", "-1"},
		{"-mode", "cache", "-mix-weight", "7"},
		{"-mode", "prefetch-only", "-decay-half-life", "-2"},
		{"-mode", "multiclient", "-clients", "2", "-rounds", "5", "-predictor", "markov"},
	}
	for _, args := range bad {
		if code := exitStatus(t, args...); code == 0 {
			t.Errorf("prefetchsim %v exited 0, want non-zero", args)
		}
	}
}

// traceFlagModes are the mode invocations every observability flag must
// work with — tracing is not a multiclient-only feature.
var traceFlagModes = [][]string{
	{"-mode", "prefetch-only", "-n", "5", "-iters", "100", "-policies", "none,skp"},
	{"-mode", "cache", "-states", "20", "-requests", "200", "-cachesize", "8", "-policies", "all"},
	{"-mode", "session", "-states", "12", "-requests", "100"},
	{"-mode", "multiclient", "-clients", "2", "-rounds", "20"},
}

func TestRunTraceAndMetricsOutAllModes(t *testing.T) {
	for _, mode := range traceFlagModes {
		dir := t.TempDir()
		trace := filepath.Join(dir, "trace.jsonl")
		metrics := filepath.Join(dir, "metrics.json")
		args := append(append([]string{}, mode...), "-trace-out", trace, "-metrics-out", metrics)
		runOut(t, args...)
		f, err := os.Open(trace)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		events, err := obs.ReadTrace(f)
		f.Close()
		if err != nil {
			t.Fatalf("%v: trace does not parse: %v", mode, err)
		}
		if len(events) == 0 {
			t.Errorf("%v: empty trace", mode)
		}
		data, err := os.ReadFile(metrics)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !strings.Contains(string(data), "counters") {
			t.Errorf("%v: metrics file missing counters:\n%.200s", mode, data)
		}
	}
}

// TestRunRefusesOverwrite: -record, -trace-out, and -metrics-out must
// refuse to clobber an existing file unless -force is passed.
func TestRunRefusesOverwrite(t *testing.T) {
	existing := filepath.Join(t.TempDir(), "existing")
	if err := os.WriteFile(existing, []byte("precious\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{"-mode", "prefetch-only", "-n", "4", "-iters", "50", "-policies", "skp", "-record", existing},
		{"-mode", "multiclient", "-clients", "2", "-rounds", "10", "-trace-out", existing},
		{"-mode", "multiclient", "-clients", "2", "-rounds", "10", "-metrics-out", existing},
	}
	for _, args := range cases {
		var sb strings.Builder
		err := run(args, &sb)
		if err == nil || !strings.Contains(err.Error(), "-force") {
			t.Errorf("run(%v) = %v, want overwrite refusal naming -force", args, err)
		}
		if data, rerr := os.ReadFile(existing); rerr != nil || string(data) != "precious\n" {
			t.Fatalf("run(%v) clobbered the existing file: %q %v", args, data, rerr)
		}
	}
	// With -force each of them overwrites.
	for _, args := range cases {
		var sb strings.Builder
		if err := run(append(append([]string{}, args...), "-force"), &sb); err != nil {
			t.Errorf("run(%v -force): %v", args, err)
		}
		if err := os.WriteFile(existing, []byte("precious\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestExitStatusOverwriteRefused: the refusal must surface as a
// non-zero process exit, not only as an in-process error value.
func TestExitStatusOverwriteRefused(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec test")
	}
	existing := filepath.Join(t.TempDir(), "existing")
	if err := os.WriteFile(existing, []byte("precious\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := [][]string{
		{"-mode", "prefetch-only", "-n", "4", "-iters", "50", "-policies", "skp", "-record", existing},
		{"-mode", "multiclient", "-clients", "2", "-rounds", "5", "-trace-out", existing},
	}
	for _, args := range bad {
		if code := exitStatus(t, args...); code == 0 {
			t.Errorf("prefetchsim %v exited 0, want non-zero", args)
		}
	}
	fresh := filepath.Join(t.TempDir(), "fresh.jsonl")
	ok := []string{"-mode", "multiclient", "-clients", "2", "-rounds", "5", "-trace-out", fresh}
	if code := exitStatus(t, ok...); code != 0 {
		t.Errorf("prefetchsim %v exited %d, want 0", ok, code)
	}
}

// TestRunTraceRejectsSweeps: a trace describes ONE run; sweep axes must
// be rejected rather than silently interleaving several runs.
func TestRunTraceRejectsSweeps(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	cases := [][]string{
		{"-mode", "multiclient", "-clients", "1,2", "-rounds", "10", "-trace-out", trace},
		{"-mode", "multiclient", "-clients", "2", "-rounds", "10", "-discipline", "all", "-trace-out", trace},
		{"-mode", "multiclient", "-clients", "2", "-rounds", "10", "-controller", "all", "-trace-out", trace},
		{"-mode", "multiclient", "-clients", "2", "-rounds", "10", "-predictor", "all", "-metrics-out", trace},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) accepted tracing a sweep", args)
		}
	}
}

func TestRunProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	runOut(t, "-mode", "multiclient", "-clients", "2", "-rounds", "10",
		"-cpuprofile", cpu, "-memprofile", mem)
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestRunFleetMode(t *testing.T) {
	out := runOut(t, "-mode", "fleet", "-clients", "3", "-rounds", "20", "-replicas", "2", "-router", "hash")
	for _, want := range []string{"fleet: 2 replicas", "router hash", "replica", "requests", "downtime", "demand access", "fleet utilization"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Without failure injection there is no availability story to tell.
	if strings.Contains(out, "availability") {
		t.Errorf("failure-free run grew an availability line:\n%s", out)
	}
}

func TestRunFleetFailures(t *testing.T) {
	out := runOut(t, "-mode", "fleet", "-clients", "4", "-rounds", "40", "-serverconc", "1", "-seed", "3",
		"-replicas", "3", "-router", "hash", "-fail-every", "40", "-recover-after", "15")
	for _, want := range []string{"fail every 40, recover after 15", "availability", "failures", "re-routed", "transfers lost"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFleetDeterminism(t *testing.T) {
	for _, router := range []string{"round-robin", "least-loaded", "hash"} {
		args := []string{"-mode", "fleet", "-clients", "3", "-rounds", "25", "-seed", "9",
			"-replicas", "3", "-router", router, "-fail-every", "30", "-recover-after", "10"}
		if a, b := runOut(t, args...), runOut(t, args...); a != b {
			t.Errorf("%s: two identical invocations differ:\n%s\n---\n%s", router, a, b)
		}
	}
}

func TestRunFleetSweep(t *testing.T) {
	out := runOut(t, "-mode", "fleet", "-clients", "3", "-rounds", "15", "-reps", "2",
		"-replicas", "1,2", "-router", "all", "-fail-every", "30", "-recover-after", "10")
	for _, want := range []string{"fleet sweep", "avail%", "reroutes", "round-robin", "least-loaded", "hash"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q:\n%s", want, out)
		}
	}
	// Header + blank + column header + 3 routers × 2 replica counts.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if got, want := len(lines), 9; got != want {
		t.Errorf("sweep printed %d lines, want %d:\n%s", got, want, out)
	}
}

func TestRunFleetTraceOut(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	runOut(t, "-mode", "fleet", "-clients", "3", "-rounds", "20", "-replicas", "2", "-router", "hash",
		"-fail-every", "30", "-recover-after", "10", "-trace-out", trace)
	f, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadTrace(f)
	f.Close()
	if err != nil {
		t.Fatalf("fleet trace does not parse: %v", err)
	}
	var routes int
	for _, ev := range events {
		if ev.Kind == obs.KindRoute {
			routes++
		}
	}
	if routes == 0 {
		t.Error("fleet trace has no route events")
	}
	// A sweep cannot be traced.
	var sb strings.Builder
	if err := run([]string{"-mode", "fleet", "-clients", "2", "-rounds", "10", "-router", "all",
		"-trace-out", filepath.Join(dir, "sweep.jsonl")}, &sb); err == nil {
		t.Error("run accepted tracing a fleet sweep")
	}
}

func TestRunFleetBadFlags(t *testing.T) {
	cases := [][]string{
		{"-mode", "fleet", "-router", "teleport"},
		{"-mode", "fleet", "-router", ""},
		{"-mode", "fleet", "-replicas", "0"},
		{"-mode", "fleet", "-replicas", ""},
		{"-mode", "fleet", "-fail-every", "-1"},
		{"-mode", "fleet", "-fail-every", "NaN"},
		{"-mode", "fleet", "-fail-every", "Inf"},
		{"-mode", "fleet", "-recover-after", "-1"},
		{"-mode", "fleet", "-recover-after", "NaN"},
		{"-mode", "fleet", "-fail-every", "10"}, // failures need a repair time
		// Fleet sweeps router × replicas only.
		{"-mode", "fleet", "-clients", "2,3"},
		{"-mode", "fleet", "-discipline", "all"},
		{"-mode", "fleet", "-controller", "all"},
		{"-mode", "fleet", "-predictor", "all"},
		// The fleet flags are validated in every mode.
		{"-mode", "prefetch-only", "-router", "teleport"},
		{"-mode", "cache", "-replicas", "0"},
		{"-mode", "session", "-fail-every", "-2"},
		{"-mode", "multiclient", "-fail-every", "5"}, // no -recover-after
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) accepted bad fleet input", args)
		}
	}
}

// TestExitStatusBadFleetFlags: the same validation at the process level.
func TestExitStatusBadFleetFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec test")
	}
	bad := [][]string{
		{"-mode", "prefetch-only", "-router", "teleport"},
		{"-mode", "cache", "-replicas", "0"},
		{"-mode", "prefetch-only", "-fail-every", "-1"},
		{"-mode", "session", "-fail-every", "5"},
		{"-mode", "fleet", "-clients", "2", "-rounds", "5", "-router", "warp"},
	}
	for _, args := range bad {
		if code := exitStatus(t, args...); code == 0 {
			t.Errorf("prefetchsim %v exited 0, want non-zero", args)
		}
	}
	ok := []string{"-mode", "fleet", "-clients", "2", "-rounds", "5", "-replicas", "2", "-router", "round-robin"}
	if code := exitStatus(t, ok...); code != 0 {
		t.Errorf("prefetchsim %v exited %d, want 0", ok, code)
	}
}

// TestRunTraceDeterministic: same seed, same flags — byte-identical
// trace and metrics files.
func TestRunTraceDeterministic(t *testing.T) {
	mk := func(dir string) (string, string) {
		trace := filepath.Join(dir, "trace.jsonl")
		metrics := filepath.Join(dir, "metrics.json")
		runOut(t, "-mode", "multiclient", "-clients", "3", "-rounds", "25", "-seed", "7",
			"-discipline", "priority", "-controller", "aimd",
			"-trace-out", trace, "-metrics-out", metrics)
		return trace, metrics
	}
	t1, m1 := mk(t.TempDir())
	t2, m2 := mk(t.TempDir())
	for _, pair := range [][2]string{{t1, t2}, {m1, m2}} {
		a, err := os.ReadFile(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s and %s differ", pair[0], pair[1])
		}
	}
}
