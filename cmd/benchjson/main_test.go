package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sample mimics `go test -bench -count=2` output across two packages,
// with noise lines and per-count variation (the parser keeps the min).
const sample = `goos: linux
goarch: amd64
pkg: prefetch/internal/eventq
cpu: Fake CPU @ 2.00GHz
BenchmarkEventQueue/64/heap-8         	    3521	    340123 ns/op
BenchmarkEventQueue/64/heap-8         	    3600	    335000 ns/op
BenchmarkEventQueue/16k/heap-8        	     804	   1490321 ns/op
PASS
ok  	prefetch/internal/eventq	2.153s
pkg: prefetch/internal/multiclient
BenchmarkMultiClientRound-8           	      52	  22512345 ns/op
BenchmarkMultiClientRound-8           	      50	  23012345 ns/op
PASS
ok  	prefetch/internal/multiclient	3.001s
`

func TestParseKeysAndMin(t *testing.T) {
	got, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"prefetch/internal/eventq.BenchmarkEventQueue/64/heap":    335000,
		"prefetch/internal/eventq.BenchmarkEventQueue/16k/heap":   1490321,
		"prefetch/internal/multiclient.BenchmarkMultiClientRound": 22512345,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok \tpkg\t0.1s\n")); err == nil {
		t.Error("empty benchmark output accepted")
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":        "BenchmarkFoo",
		"BenchmarkFoo/sub-16":   "BenchmarkFoo/sub",
		"BenchmarkFoo/n-2-4":    "BenchmarkFoo/n-2",
		"BenchmarkFoo/heap":     "BenchmarkFoo/heap",
		"BenchmarkFoo/size-big": "BenchmarkFoo/size-big",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

// writeRecord writes a baseline file for the gate tests.
func writeRecord(t *testing.T, path string, benchmarks map[string]float64) {
	t.Helper()
	data, err := json.Marshal(Record{Go: "go1.21", Benchmarks: benchmarks})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesRecord(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_abc.json")
	var sb strings.Builder
	if err := run([]string{"-out", out}, strings.NewReader(sample), &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Benchmarks) != 3 || rec.Go == "" {
		t.Errorf("record = %+v, want 3 benchmarks and a go version", rec)
	}
}

// TestGateTripsOnSlowdown is the satellite's acceptance check: a
// synthetic 2x slowdown of one tracked benchmark must fail the gate at
// the default 1.25x threshold.
func TestGateTripsOnSlowdown(t *testing.T) {
	base := filepath.Join(t.TempDir(), "BENCH_baseline.json")
	writeRecord(t, base, map[string]float64{
		// Baseline at half the sampled ns/op = the sample is a 2x slowdown.
		"prefetch/internal/multiclient.BenchmarkMultiClientRound": 22512345.0 / 2,
		"prefetch/internal/eventq.BenchmarkEventQueue/64/heap":    335000,
	})
	var sb strings.Builder
	err := run([]string{"-baseline", base}, strings.NewReader(sample), &sb)
	if err == nil {
		t.Fatalf("2x slowdown passed the gate:\n%s", sb.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkMultiClientRound") {
		t.Errorf("gate error does not name the regressed benchmark: %v", err)
	}
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Errorf("report does not flag the regression:\n%s", sb.String())
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	base := filepath.Join(t.TempDir(), "BENCH_baseline.json")
	writeRecord(t, base, map[string]float64{
		// Current is within 1.25x of these baselines (up to ~1.2x slower).
		"prefetch/internal/multiclient.BenchmarkMultiClientRound": 22512345.0 / 1.2,
		"prefetch/internal/eventq.BenchmarkEventQueue/64/heap":    335000,
		"prefetch/internal/eventq.BenchmarkEventQueue/16k/heap":   1600000, // current is faster
	})
	var sb strings.Builder
	if err := run([]string{"-baseline", base}, strings.NewReader(sample), &sb); err != nil {
		t.Fatalf("within-threshold run failed the gate: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "all 3 tracked benchmarks within") {
		t.Errorf("missing pass summary:\n%s", sb.String())
	}
}

// TestGateTripsOnMissingBenchmark: renaming or deleting a tracked
// benchmark must fail rather than silently disarm its gate.
func TestGateTripsOnMissingBenchmark(t *testing.T) {
	base := filepath.Join(t.TempDir(), "BENCH_baseline.json")
	writeRecord(t, base, map[string]float64{
		"prefetch/internal/schedsrv.BenchmarkSchedulerDequeue/fifo": 100000,
	})
	var sb strings.Builder
	err := run([]string{"-baseline", base}, strings.NewReader(sample), &sb)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("missing tracked benchmark did not trip the gate: %v", err)
	}
}

// TestGateIgnoresUntrackedBenchmarks: new benchmarks absent from the
// baseline pass — they start being tracked at the next baseline refresh.
func TestGateIgnoresUntrackedBenchmarks(t *testing.T) {
	base := filepath.Join(t.TempDir(), "BENCH_baseline.json")
	writeRecord(t, base, map[string]float64{
		"prefetch/internal/eventq.BenchmarkEventQueue/64/heap": 335000,
	})
	var sb strings.Builder
	if err := run([]string{"-baseline", base}, strings.NewReader(sample), &sb); err != nil {
		t.Errorf("untracked benchmarks tripped the gate: %v", err)
	}
}

func TestRunFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{},                         // nothing to do
		{"-threshold", "0.9"},      // gate below 1x
		{"-threshold", "NaN"},      // NaN threshold
		{"-out", "x", "stray-arg"}, // positional args
		{"-baseline", "/nonexistent/BENCH_baseline.json"},
	} {
		var sb strings.Builder
		if err := run(args, strings.NewReader(sample), &sb); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
