package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sample mimics `go test -bench -benchmem -count=2` output across two
// packages, with noise lines, per-count variation (the parser keeps the
// min of every column independently) and one line without -benchmem
// columns.
const sample = `goos: linux
goarch: amd64
pkg: prefetch/internal/eventq
cpu: Fake CPU @ 2.00GHz
BenchmarkEventQueue/64/heap-8         	    3521	    340123 ns/op	    2048 B/op	      12 allocs/op
BenchmarkEventQueue/64/heap-8         	    3600	    335000 ns/op	    2100 B/op	      14 allocs/op
BenchmarkEventQueue/16k/heap-8        	     804	   1490321 ns/op
PASS
ok  	prefetch/internal/eventq	2.153s
pkg: prefetch/internal/multiclient
BenchmarkMultiClientRound/N=64-8      	      52	  22512345 ns/op	 1048576 B/op	    4096 allocs/op
BenchmarkMultiClientRound/N=64-8      	      50	  23012345 ns/op	 1048570 B/op	    4095 allocs/op
PASS
ok  	prefetch/internal/multiclient	3.001s
`

func fptr(v float64) *float64 { return &v }

func TestParseKeysAndMin(t *testing.T) {
	got, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Metrics{
		"prefetch/internal/eventq.BenchmarkEventQueue/64/heap":         {NsPerOp: 335000, BytesPerOp: fptr(2048), AllocsPerOp: fptr(12)},
		"prefetch/internal/eventq.BenchmarkEventQueue/16k/heap":        {NsPerOp: 1490321},
		"prefetch/internal/multiclient.BenchmarkMultiClientRound/N=64": {NsPerOp: 22512345, BytesPerOp: fptr(1048570), AllocsPerOp: fptr(4095)},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Errorf("missing %s", k)
			continue
		}
		if g.NsPerOp != w.NsPerOp {
			t.Errorf("%s ns/op = %v, want %v", k, g.NsPerOp, w.NsPerOp)
		}
		switch {
		case (g.AllocsPerOp == nil) != (w.AllocsPerOp == nil), (g.BytesPerOp == nil) != (w.BytesPerOp == nil):
			t.Errorf("%s memory-column presence = (%v, %v), want (%v, %v)", k, g.BytesPerOp, g.AllocsPerOp, w.BytesPerOp, w.AllocsPerOp)
		case g.AllocsPerOp != nil && (*g.AllocsPerOp != *w.AllocsPerOp || *g.BytesPerOp != *w.BytesPerOp):
			t.Errorf("%s memory = %v B/op %v allocs/op, want %v/%v", k, *g.BytesPerOp, *g.AllocsPerOp, *w.BytesPerOp, *w.AllocsPerOp)
		}
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok \tpkg\t0.1s\n")); err == nil {
		t.Error("empty benchmark output accepted")
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":        "BenchmarkFoo",
		"BenchmarkFoo/sub-16":   "BenchmarkFoo/sub",
		"BenchmarkFoo/n-2-4":    "BenchmarkFoo/n-2",
		"BenchmarkFoo/heap":     "BenchmarkFoo/heap",
		"BenchmarkFoo/size-big": "BenchmarkFoo/size-big",
		"BenchmarkFoo/N=4096-8": "BenchmarkFoo/N=4096",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

// writeRecord writes a baseline file for the gate tests.
func writeRecord(t *testing.T, path string, benchmarks map[string]Metrics) {
	t.Helper()
	data, err := json.Marshal(Record{Go: "go1.21", Benchmarks: benchmarks})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesRecord(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_abc.json")
	var sb strings.Builder
	if err := run([]string{"-out", out}, strings.NewReader(sample), &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Benchmarks) != 3 || rec.Go == "" {
		t.Errorf("record = %+v, want 3 benchmarks and a go version", rec)
	}
	if m := rec.Benchmarks["prefetch/internal/eventq.BenchmarkEventQueue/64/heap"]; m.AllocsPerOp == nil || *m.AllocsPerOp != 12 {
		t.Errorf("allocs/op did not round-trip: %+v", m)
	}
}

// TestGateTripsOnSlowdown is the satellite's acceptance check: a
// synthetic 2x slowdown of one tracked benchmark must fail the gate at
// the default 1.25x threshold.
func TestGateTripsOnSlowdown(t *testing.T) {
	base := filepath.Join(t.TempDir(), "BENCH_baseline.json")
	writeRecord(t, base, map[string]Metrics{
		// Baseline at half the sampled ns/op = the sample is a 2x slowdown.
		"prefetch/internal/multiclient.BenchmarkMultiClientRound/N=64": {NsPerOp: 22512345.0 / 2},
		"prefetch/internal/eventq.BenchmarkEventQueue/64/heap":         {NsPerOp: 335000},
	})
	var sb strings.Builder
	err := run([]string{"-baseline", base}, strings.NewReader(sample), &sb)
	if err == nil {
		t.Fatalf("2x slowdown passed the gate:\n%s", sb.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkMultiClientRound") {
		t.Errorf("gate error does not name the regressed benchmark: %v", err)
	}
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Errorf("report does not flag the regression:\n%s", sb.String())
	}
}

// TestGateTripsOnAllocGrowth: a benchmark whose baseline records
// allocs/op must not allocate more than alloc-threshold x as much, even
// when its time is fine.
func TestGateTripsOnAllocGrowth(t *testing.T) {
	base := filepath.Join(t.TempDir(), "BENCH_baseline.json")
	writeRecord(t, base, map[string]Metrics{
		// Time generous, allocations halved: the sample's 4095 allocs/op
		// is a 2x allocation regression.
		"prefetch/internal/multiclient.BenchmarkMultiClientRound/N=64": {
			NsPerOp: 30000000, AllocsPerOp: fptr(2048),
		},
	})
	var sb strings.Builder
	err := run([]string{"-baseline", base}, strings.NewReader(sample), &sb)
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("2x allocation growth passed the gate: %v\n%s", err, sb.String())
	}
}

// TestGateTripsWhenAllocFreeRegresses: a zero-allocs baseline means any
// allocation at all is a regression (ratio thresholds are meaningless
// against zero).
func TestGateTripsWhenAllocFreeRegresses(t *testing.T) {
	base := filepath.Join(t.TempDir(), "BENCH_baseline.json")
	writeRecord(t, base, map[string]Metrics{
		"prefetch/internal/eventq.BenchmarkEventQueue/64/heap": {NsPerOp: 335000, AllocsPerOp: fptr(0)},
	})
	var sb strings.Builder
	if err := run([]string{"-baseline", base}, strings.NewReader(sample), &sb); err == nil {
		t.Fatalf("allocations against an alloc-free baseline passed the gate:\n%s", sb.String())
	}
}

// TestGateRequiresBenchmemWhenTracked: dropping -benchmem from a run
// must not silently disarm a tracked allocation gate.
func TestGateRequiresBenchmemWhenTracked(t *testing.T) {
	base := filepath.Join(t.TempDir(), "BENCH_baseline.json")
	writeRecord(t, base, map[string]Metrics{
		// The 16k sample line has no memory columns.
		"prefetch/internal/eventq.BenchmarkEventQueue/16k/heap": {NsPerOp: 1490321, AllocsPerOp: fptr(100)},
	})
	var sb strings.Builder
	err := run([]string{"-baseline", base}, strings.NewReader(sample), &sb)
	if err == nil || !strings.Contains(err.Error(), "-benchmem") {
		t.Errorf("missing memory columns did not trip the tracked allocation gate: %v", err)
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	base := filepath.Join(t.TempDir(), "BENCH_baseline.json")
	writeRecord(t, base, map[string]Metrics{
		// Current is within 1.25x time (up to ~1.2x slower) and within
		// 1.10x allocations of these baselines.
		"prefetch/internal/multiclient.BenchmarkMultiClientRound/N=64": {NsPerOp: 22512345.0 / 1.2, AllocsPerOp: fptr(4000)},
		"prefetch/internal/eventq.BenchmarkEventQueue/64/heap":         {NsPerOp: 335000, AllocsPerOp: fptr(12)},
		"prefetch/internal/eventq.BenchmarkEventQueue/16k/heap":        {NsPerOp: 1600000}, // current is faster; no allocs tracked
	})
	var sb strings.Builder
	if err := run([]string{"-baseline", base}, strings.NewReader(sample), &sb); err != nil {
		t.Fatalf("within-threshold run failed the gate: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "all 3 tracked benchmarks within") {
		t.Errorf("missing pass summary:\n%s", sb.String())
	}
}

// TestGateAcceptsLegacyBaseline: the pre-memory-column record form — a
// bare ns/op number per benchmark — still loads and gates time.
func TestGateAcceptsLegacyBaseline(t *testing.T) {
	base := filepath.Join(t.TempDir(), "BENCH_baseline.json")
	legacy := `{"go":"go1.21","note":"","benchmarks":{` +
		`"prefetch/internal/eventq.BenchmarkEventQueue/64/heap":335000,` +
		`"prefetch/internal/multiclient.BenchmarkMultiClientRound/N=64":11256172}}`
	if err := os.WriteFile(base, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err := run([]string{"-baseline", base}, strings.NewReader(sample), &sb)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkMultiClientRound") {
		t.Errorf("legacy baseline did not gate time: %v", err)
	}
}

// TestGateTripsOnMissingBenchmark: renaming or deleting a tracked
// benchmark must fail rather than silently disarm its gate.
func TestGateTripsOnMissingBenchmark(t *testing.T) {
	base := filepath.Join(t.TempDir(), "BENCH_baseline.json")
	writeRecord(t, base, map[string]Metrics{
		"prefetch/internal/schedsrv.BenchmarkSchedulerDequeue/fifo": {NsPerOp: 100000},
	})
	var sb strings.Builder
	err := run([]string{"-baseline", base}, strings.NewReader(sample), &sb)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("missing tracked benchmark did not trip the gate: %v", err)
	}
}

// TestGateIgnoresUntrackedBenchmarks: new benchmarks absent from the
// baseline pass — they start being tracked at the next baseline refresh.
func TestGateIgnoresUntrackedBenchmarks(t *testing.T) {
	base := filepath.Join(t.TempDir(), "BENCH_baseline.json")
	writeRecord(t, base, map[string]Metrics{
		"prefetch/internal/eventq.BenchmarkEventQueue/64/heap": {NsPerOp: 335000},
	})
	var sb strings.Builder
	if err := run([]string{"-baseline", base}, strings.NewReader(sample), &sb); err != nil {
		t.Errorf("untracked benchmarks tripped the gate: %v", err)
	}
}

func TestRunFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{},                          // nothing to do
		{"-threshold", "0.9"},       // gate below 1x
		{"-threshold", "NaN"},       // NaN threshold
		{"-alloc-threshold", "1.0"}, // alloc gate at 1x exactly
		{"-alloc-threshold", "NaN"}, // NaN alloc threshold
		{"-out", "x", "stray-arg"},  // positional args
		{"-baseline", "/nonexistent/BENCH_baseline.json"},
	} {
		var sb strings.Builder
		if err := run(args, strings.NewReader(sample), &sb); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
