// Command benchjson turns `go test -bench` output into a committed,
// diffable benchmark record and enforces a regression gate against it.
//
// It reads benchmark output on stdin, keys every result by
// "<package>.<benchmark>" (the -GOMAXPROCS suffix is stripped so records
// compare across machines), keeps the best value seen for each key —
// minimum ns/op, and when the run used -benchmem, minimum B/op and
// allocs/op too (run with -count > 1 so the minimum is meaningful) — and
// writes the result as JSON:
//
//	go test -run '^$' -bench 'EventQueue|SchedulerDequeue|MultiClientRound' \
//	    -benchmem -count 3 ./internal/... | benchjson -out BENCH_$(git rev-parse --short=12 HEAD).json
//
// With -baseline, every benchmark tracked by the baseline file must be
// present in the new record and must not be slower than threshold x its
// baseline ns/op — nor, when the baseline records allocations, allocate
// more than alloc-threshold x its baseline allocs/op — or benchjson
// exits non-zero listing the regressions: the CI gate that turns the
// repo's speed and allocation claims into enforced facts. A tracked
// benchmark that disappears also fails, so renaming a benchmark cannot
// silently disarm its gate. New benchmarks absent from the baseline pass
// (they start being tracked when the baseline is regenerated with
// `make bench-baseline`). Legacy baselines that recorded a bare ns/op
// number per benchmark still load; they simply gate time only.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Record is the JSON layout of a benchmark file.
type Record struct {
	Go         string             `json:"go"`   // toolchain that produced the record
	Note       string             `json:"note"` // free-form provenance note
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

// Metrics is one benchmark's best observed measurements. The memory
// columns are pointers because absence is meaningful: a run without
// -benchmem records time only, and the allocation gate only arms for
// benchmarks whose baseline recorded them.
type Metrics struct {
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// UnmarshalJSON also accepts the legacy bare-number form (ns/op only),
// so pre-existing baseline files keep gating time without regeneration.
func (m *Metrics) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] != '{' {
		return json.Unmarshal(data, &m.NsPerOp)
	}
	type metrics Metrics // shed the method to avoid recursion
	return json.Unmarshal(data, (*metrics)(m))
}

// benchLine matches one `go test -bench` result line, with the optional
// -benchmem columns:
//
//	BenchmarkName/sub-8   	    1000	   123456 ns/op	  12 B/op	  3 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op\s+([0-9.]+) allocs/op)?`)

// pkgLine matches the package banner `go test` prints before results.
var pkgLine = regexp.MustCompile(`^pkg:\s+(\S+)`)

// stripProcs removes the trailing -GOMAXPROCS suffix from a benchmark
// name so records compare across machines with different core counts.
//
// Caveat: go only appends the suffix when GOMAXPROCS > 1, and a
// sub-benchmark whose own name ends in -<digits> is indistinguishable
// from a suffixed one, so such names key differently at GOMAXPROCS=1
// versus >1. Tracked benchmarks must therefore not end their names in
// -<digits> (none of this repo's do); prefer "/n2" over "/n-2".
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// minPtr folds a new observation into an optional running minimum.
func minPtr(prev *float64, v float64) *float64 {
	if prev == nil || v < *prev {
		return &v
	}
	return prev
}

// parse reads benchmark output into a name → best-metrics map.
func parse(in io.Reader) (map[string]Metrics, error) {
	out := map[string]Metrics{}
	pkg := ""
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if m := pkgLine.FindStringSubmatch(line); m != nil {
			pkg = m[1]
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", line, err)
		}
		key := stripProcs(m[1])
		if pkg != "" {
			key = pkg + "." + key
		}
		cur, seen := out[key]
		if !seen || ns < cur.NsPerOp {
			cur.NsPerOp = ns
		}
		if m[4] != "" {
			// Each memory column keeps its own minimum: the best time and
			// the fewest allocations need not come from the same -count run.
			bytesOp, err := strconv.ParseFloat(m[4], 64)
			if err != nil {
				return nil, fmt.Errorf("bad B/op in %q: %v", line, err)
			}
			allocsOp, err := strconv.ParseFloat(m[5], 64)
			if err != nil {
				return nil, fmt.Errorf("bad allocs/op in %q: %v", line, err)
			}
			cur.BytesPerOp = minPtr(cur.BytesPerOp, bytesOp)
			cur.AllocsPerOp = minPtr(cur.AllocsPerOp, allocsOp)
		}
		out[key] = cur
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, errors.New("no benchmark results on stdin (run go test -bench and pipe its output)")
	}
	return out, nil
}

// exceeds reports whether cur regresses past threshold x base, treating
// a zero baseline as "any growth regresses" (an alloc-free benchmark
// must stay alloc-free).
func exceeds(cur, base, threshold float64) bool {
	if base == 0 {
		return cur > 0
	}
	return cur/base > threshold
}

// compare gates current against the baseline record: every tracked
// benchmark must exist, stay within threshold x its baseline ns/op, and
// — when the baseline recorded allocations — within allocThreshold x
// its baseline allocs/op.
func compare(out io.Writer, baseline Record, current map[string]Metrics, threshold, allocThreshold float64) error {
	names := make([]string, 0, len(baseline.Benchmarks))
	for name := range baseline.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	fmt.Fprintf(out, "%-70s %12s %12s %8s %16s\n", "benchmark", "baseline", "current", "ratio", "allocs")
	for _, name := range names {
		base := baseline.Benchmarks[name]
		cur, ok := current[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: tracked benchmark missing from this run", name))
			fmt.Fprintf(out, "%-70s %12.1f %12s %8s %16s\n", name, base.NsPerOp, "MISSING", "-", "-")
			continue
		}
		ratio := cur.NsPerOp / base.NsPerOp
		status := ""
		if base.NsPerOp > 0 && ratio > threshold {
			failures = append(failures, fmt.Sprintf("%s: %.1f ns/op vs baseline %.1f (%.2fx > %.2fx)",
				name, cur.NsPerOp, base.NsPerOp, ratio, threshold))
			status = "  REGRESSION"
		}
		allocs := "-"
		if base.AllocsPerOp != nil {
			switch {
			case cur.AllocsPerOp == nil:
				failures = append(failures, fmt.Sprintf("%s: baseline tracks allocs/op but this run lacks them (run with -benchmem)", name))
				allocs = "MISSING"
				if status == "" {
					status = "  REGRESSION"
				}
			case exceeds(*cur.AllocsPerOp, *base.AllocsPerOp, allocThreshold):
				failures = append(failures, fmt.Sprintf("%s: %.0f allocs/op vs baseline %.0f (limit %.2fx)",
					name, *cur.AllocsPerOp, *base.AllocsPerOp, allocThreshold))
				allocs = fmt.Sprintf("%.0f vs %.0f", *cur.AllocsPerOp, *base.AllocsPerOp)
				if status == "" {
					status = "  REGRESSION"
				}
			default:
				allocs = fmt.Sprintf("%.0f vs %.0f", *cur.AllocsPerOp, *base.AllocsPerOp)
			}
		}
		fmt.Fprintf(out, "%-70s %12.1f %12.1f %7.2fx %16s%s\n", name, base.NsPerOp, cur.NsPerOp, ratio, allocs, status)
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchmark regression gate tripped:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		outPath        = fs.String("out", "", "write the parsed benchmark record to this JSON file")
		basePath       = fs.String("baseline", "", "compare against this baseline record and fail on regression")
		threshold      = fs.Float64("threshold", 1.25, "regression gate: fail when current > threshold * baseline ns/op")
		allocThreshold = fs.Float64("alloc-threshold", 1.10, "allocation gate: fail when current > alloc-threshold * baseline allocs/op (benchmarks whose baseline records them)")
		note           = fs.String("note", "", "provenance note stored in the record")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v (benchmark output is read from stdin)", fs.Args())
	}
	if !(*threshold > 1) {
		return fmt.Errorf("-threshold %v must be > 1", *threshold)
	}
	if !(*allocThreshold > 1) {
		return fmt.Errorf("-alloc-threshold %v must be > 1", *allocThreshold)
	}
	if *outPath == "" && *basePath == "" {
		return errors.New("nothing to do: give -out and/or -baseline")
	}
	current, err := parse(in)
	if err != nil {
		return err
	}
	if *outPath != "" {
		rec := Record{Go: runtime.Version(), Note: *note, Benchmarks: current}
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d benchmarks to %s\n", len(current), *outPath)
	}
	if *basePath != "" {
		data, err := os.ReadFile(*basePath)
		if err != nil {
			return err
		}
		var baseline Record
		if err := json.Unmarshal(data, &baseline); err != nil {
			return fmt.Errorf("parsing baseline %s: %v", *basePath, err)
		}
		if len(baseline.Benchmarks) == 0 {
			return fmt.Errorf("baseline %s tracks no benchmarks", *basePath)
		}
		if err := compare(out, baseline, current, *threshold, *allocThreshold); err != nil {
			return err
		}
		fmt.Fprintf(out, "all %d tracked benchmarks within %.2fx of baseline\n",
			len(baseline.Benchmarks), *threshold)
	}
	return nil
}
