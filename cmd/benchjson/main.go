// Command benchjson turns `go test -bench` output into a committed,
// diffable benchmark record and enforces a regression gate against it.
//
// It reads benchmark output on stdin, keys every result by
// "<package>.<benchmark>" (the -GOMAXPROCS suffix is stripped so records
// compare across machines), keeps the fastest ns/op seen for each key
// (run with -count > 1 so the minimum is meaningful), and writes the
// result as JSON:
//
//	go test -run '^$' -bench 'EventQueue|SchedulerDequeue|MultiClientRound' \
//	    -count 3 ./internal/... | benchjson -out BENCH_$(git rev-parse --short=12 HEAD).json
//
// With -baseline, every benchmark tracked by the baseline file must be
// present in the new record and must not be slower than threshold x its
// baseline ns/op, or benchjson exits non-zero listing the regressions —
// the CI gate that turns the repo's speed claims into enforced facts. A
// tracked benchmark that disappears also fails, so renaming a benchmark
// cannot silently disarm its gate. New benchmarks absent from the
// baseline pass (they start being tracked when the baseline is
// regenerated with `make bench-baseline`).
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Record is the JSON layout of a benchmark file.
type Record struct {
	Go         string             `json:"go"`   // toolchain that produced the record
	Note       string             `json:"note"` // free-form provenance note
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkName/sub-8   	    1000	   123456 ns/op	  12 B/op ...
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op`)

// pkgLine matches the package banner `go test` prints before results.
var pkgLine = regexp.MustCompile(`^pkg:\s+(\S+)`)

// stripProcs removes the trailing -GOMAXPROCS suffix from a benchmark
// name so records compare across machines with different core counts.
//
// Caveat: go only appends the suffix when GOMAXPROCS > 1, and a
// sub-benchmark whose own name ends in -<digits> is indistinguishable
// from a suffixed one, so such names key differently at GOMAXPROCS=1
// versus >1. Tracked benchmarks must therefore not end their names in
// -<digits> (none of this repo's do); prefer "/n2" over "/n-2".
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parse reads benchmark output into a name → fastest-ns/op map.
func parse(in io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	pkg := ""
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if m := pkgLine.FindStringSubmatch(line); m != nil {
			pkg = m[1]
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", line, err)
		}
		key := stripProcs(m[1])
		if pkg != "" {
			key = pkg + "." + key
		}
		if prev, seen := out[key]; !seen || ns < prev {
			out[key] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, errors.New("no benchmark results on stdin (run go test -bench and pipe its output)")
	}
	return out, nil
}

// compare gates current against the baseline record: every tracked
// benchmark must exist and stay within threshold x its baseline ns/op.
func compare(out io.Writer, baseline Record, current map[string]float64, threshold float64) error {
	names := make([]string, 0, len(baseline.Benchmarks))
	for name := range baseline.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	fmt.Fprintf(out, "%-70s %12s %12s %8s\n", "benchmark", "baseline", "current", "ratio")
	for _, name := range names {
		base := baseline.Benchmarks[name]
		cur, ok := current[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: tracked benchmark missing from this run", name))
			fmt.Fprintf(out, "%-70s %12.1f %12s %8s\n", name, base, "MISSING", "-")
			continue
		}
		ratio := cur / base
		status := ""
		if base > 0 && ratio > threshold {
			failures = append(failures, fmt.Sprintf("%s: %.1f ns/op vs baseline %.1f (%.2fx > %.2fx)",
				name, cur, base, ratio, threshold))
			status = "  REGRESSION"
		}
		fmt.Fprintf(out, "%-70s %12.1f %12.1f %7.2fx%s\n", name, base, cur, ratio, status)
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchmark regression gate tripped:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		outPath   = fs.String("out", "", "write the parsed benchmark record to this JSON file")
		basePath  = fs.String("baseline", "", "compare against this baseline record and fail on regression")
		threshold = fs.Float64("threshold", 1.25, "regression gate: fail when current > threshold * baseline ns/op")
		note      = fs.String("note", "", "provenance note stored in the record")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v (benchmark output is read from stdin)", fs.Args())
	}
	if !(*threshold > 1) {
		return fmt.Errorf("-threshold %v must be > 1", *threshold)
	}
	if *outPath == "" && *basePath == "" {
		return errors.New("nothing to do: give -out and/or -baseline")
	}
	current, err := parse(in)
	if err != nil {
		return err
	}
	if *outPath != "" {
		rec := Record{Go: runtime.Version(), Note: *note, Benchmarks: current}
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d benchmarks to %s\n", len(current), *outPath)
	}
	if *basePath != "" {
		data, err := os.ReadFile(*basePath)
		if err != nil {
			return err
		}
		var baseline Record
		if err := json.Unmarshal(data, &baseline); err != nil {
			return fmt.Errorf("parsing baseline %s: %v", *basePath, err)
		}
		if len(baseline.Benchmarks) == 0 {
			return fmt.Errorf("baseline %s tracks no benchmarks", *basePath)
		}
		if err := compare(out, baseline, current, *threshold); err != nil {
			return err
		}
		fmt.Fprintf(out, "all %d tracked benchmarks within %.2fx of baseline\n",
			len(baseline.Benchmarks), *threshold)
	}
	return nil
}
