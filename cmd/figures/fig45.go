package main

import (
	"fmt"
	"strings"

	"prefetch/internal/access"
	"prefetch/internal/core"
	"prefetch/internal/plot"
	"prefetch/internal/rng"
	"prefetch/internal/sim"
	"prefetch/internal/workload"
)

// fig45Policies are the series of Figures 4 and 5. "SKP" is the literal
// Figure-3 algorithm (what the paper simulated); "SKP*" is the
// Theorem-3-correct solver added by this reproduction.
func fig45Policies() []sim.Policy {
	return []sim.Policy{
		sim.NoPrefetch{},
		sim.PerfectPolicy{},
		sim.KPPolicy{},
		sim.SKPPolicy{Mode: core.DeltaPaperTail},
		sim.SKPPolicy{Mode: core.DeltaTheorem3},
	}
}

// prettyName maps policy names to figure-legend labels.
func prettyName(p string) string {
	switch p {
	case "none":
		return "no prefetch"
	case "perfect":
		return "perfect prefetch"
	case "kp":
		return "KP prefetch"
	case "skp-paper":
		return "SKP prefetch"
	case "skp":
		return "SKP* (Thm-3 δ)"
	default:
		return p
	}
}

// runPrefetchOnlyPanel runs one (n, generator) panel and returns results.
func runPrefetchOnlyPanel(cfg config, n int, gen access.ProbGen, scatter int) ([]sim.PrefetchOnlyResult, []workload.Round, error) {
	// Seed derivation keeps panels independent but reproducible.
	r := rng.New(cfg.seed ^ uint64(n)<<32 ^ uint64(len(gen.Name())))
	src, err := workload.NewRandomSource(r, workload.Fig45Config(n, gen), cfg.iters)
	if err != nil {
		return nil, nil, err
	}
	rounds := workload.Collect(src)
	results, err := sim.RunPrefetchOnly(rounds, fig45Policies(), sim.PrefetchOnlyOptions{ScatterLimit: scatter})
	if err != nil {
		return nil, nil, err
	}
	return results, rounds, nil
}

func findResult(results []sim.PrefetchOnlyResult, name string) *sim.PrefetchOnlyResult {
	for i := range results {
		if results[i].Policy == name {
			return &results[i]
		}
	}
	return nil
}

// runFig4 regenerates the scatter panels of Figure 4: T against v for SKP
// and KP prefetch under skewy and flat probabilities, n = 10. The paper's
// "SKP prefetch" panels are rendered twice — once with the
// Theorem-3-correct solver (which reproduces the described 4b ≈ 4d
// similarity) and once with the literal Figure-3 pseudocode (suffix _lit).
func runFig4(cfg config, summary *strings.Builder) error {
	fmt.Fprintf(summary, "\n--- Figure 4: scatter of access time vs viewing time (n=10) ---\n")
	panels := []struct {
		tag    string
		gen    access.ProbGen
		policy string
	}{
		{"a_skp_skewy", access.SkewyGen{}, "skp"},
		{"b_skp_flat", access.FlatGen{}, "skp"},
		{"c_kp_skewy", access.SkewyGen{}, "kp"},
		{"d_kp_flat", access.FlatGen{}, "kp"},
		{"a_lit_skewy", access.SkewyGen{}, "skp-paper"},
		{"b_lit_flat", access.FlatGen{}, "skp-paper"},
	}
	for _, panel := range panels {
		results, _, err := runPrefetchOnlyPanel(cfg, 10, panel.gen, 500)
		if err != nil {
			return err
		}
		res := findResult(results, panel.policy)
		if res == nil {
			return fmt.Errorf("policy %s missing", panel.policy)
		}
		xs := make([]float64, len(res.Scatter))
		ys := make([]float64, len(res.Scatter))
		overshoot := 0 // points above the max retrieval time of 30
		triangle := 0  // points above the T = v line (Fig. 4c signature)
		for i, pt := range res.Scatter {
			xs[i], ys[i] = pt.Viewing, pt.Access
			if pt.Access > 30 {
				overshoot++
			}
			if pt.Access > pt.Viewing {
				triangle++
			}
		}
		chart := &plot.Chart{
			Title:   fmt.Sprintf("Fig 4%s: %s, %s, n=10", panel.tag[:1], prettyName(panel.policy), panel.gen.Name()),
			XLabel:  "v",
			YLabel:  "T",
			Scatter: true,
			XMax:    100,
			YMax:    50,
			Series:  []plot.Series{{Name: prettyName(panel.policy), X: xs, Y: ys}},
		}
		if err := saveChart(cfg, "fig4"+panel.tag, chart); err != nil {
			return err
		}
		fmt.Fprintf(summary, "fig4%s (%s, %s): %d pts, %d with T>30 (stretch overshoot), %d above T=v\n",
			panel.tag[:1], prettyName(panel.policy), panel.gen.Name(), len(xs), overshoot, triangle)
	}
	return nil
}

// runFig5 regenerates the four panels of Figure 5: average access time
// against viewing time for {no, perfect, KP, SKP} × {skewy, flat} ×
// {n=10, n=25}, plotted for v ≤ 50.
func runFig5(cfg config, summary *strings.Builder) error {
	fmt.Fprintf(summary, "\n--- Figure 5: average access time vs viewing time ---\n")
	panels := []struct {
		tag string
		n   int
		gen access.ProbGen
	}{
		{"a", 10, access.SkewyGen{}},
		{"b", 10, access.FlatGen{}},
		{"c", 25, access.SkewyGen{}},
		{"d", 25, access.FlatGen{}},
	}
	for _, panel := range panels {
		results, _, err := runPrefetchOnlyPanel(cfg, panel.n, panel.gen, 0)
		if err != nil {
			return err
		}
		chart := &plot.Chart{
			Title:  fmt.Sprintf("Fig 5%s: n=%d, %s", panel.tag, panel.n, panel.gen.Name()),
			XLabel: "v",
			YLabel: "average T",
			XMax:   50,
			YMax:   25,
		}
		for _, res := range results {
			xs, ys := res.ByViewing.Points()
			chart.Series = append(chart.Series, plot.Series{Name: prettyName(res.Policy), X: xs, Y: ys})
		}
		if err := saveChart(cfg, "fig5"+panel.tag, chart); err != nil {
			return err
		}

		// Summary: overall means and the small-v anomaly census.
		fmt.Fprintf(summary, "fig5%s (n=%d, %s): ", panel.tag, panel.n, panel.gen.Name())
		for _, res := range results {
			fmt.Fprintf(summary, "%s=%.3f ", res.Policy, res.Overall.Mean())
		}
		none := findResult(results, "none")
		paper := findResult(results, "skp-paper")
		correct := findResult(results, "skp")
		worseBins := 0
		worseBinsCorrect := 0
		for v := 1; v <= 10; v++ {
			nb, pb, cb := none.ByViewing.Bin(v), paper.ByViewing.Bin(v), correct.ByViewing.Bin(v)
			if nb.N() == 0 {
				continue
			}
			if pb.Mean() > nb.Mean() {
				worseBins++
			}
			if cb.Mean() > nb.Mean() {
				worseBinsCorrect++
			}
		}
		fmt.Fprintf(summary, "| v<=10 bins where SKP(paper) > none: %d, SKP*(thm3) > none: %d\n",
			worseBins, worseBinsCorrect)
	}
	return nil
}
