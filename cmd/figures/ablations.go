package main

import (
	"fmt"
	"strings"

	"prefetch/internal/access"
	"prefetch/internal/core"
	"prefetch/internal/plot"
	"prefetch/internal/rng"
	"prefetch/internal/sim"
	"prefetch/internal/stats"
	"prefetch/internal/workload"
)

// randProblem draws a solver instance matching the Fig-4/5 workload.
func randProblem(r *rng.Source, n int, gen access.ProbGen, vMax int) core.Problem {
	probs := make([]float64, n)
	gen.Generate(r, probs)
	items := make([]core.Item, n)
	for i := range items {
		items[i] = core.Item{ID: i, Prob: probs[i], Retrieval: float64(r.IntRange(1, 30))}
	}
	return core.Problem{Items: items, Viewing: float64(r.IntRange(1, vMax))}
}

// runPruning quantifies what the Theorem-2 bound saves: branch-and-bound
// nodes with and without pruning, as a function of n (experiment E4).
func runPruning(cfg config, summary *strings.Builder) error {
	fmt.Fprintf(summary, "\n--- Ablation: Theorem-2 bound pruning (E4) ---\n")
	r := rng.New(cfg.seed ^ 0xABB0)
	instances := 200
	if cfg.quick {
		instances = 50
	}
	var xs, withB, withoutB []float64
	for _, n := range []int{8, 12, 16, 20} {
		var nodesWith, nodesWithout stats.Accumulator
		for i := 0; i < instances; i++ {
			p := randProblem(r, n, access.SkewyGen{}, 100)
			_, sw, err := core.SolveSKPOpts(p, core.Options{})
			if err != nil {
				return err
			}
			_, swo, err := core.SolveSKPOpts(p, core.Options{DisableBound: true})
			if err != nil {
				return err
			}
			nodesWith.Add(float64(sw.Nodes))
			nodesWithout.Add(float64(swo.Nodes))
		}
		xs = append(xs, float64(n))
		withB = append(withB, nodesWith.Mean())
		withoutB = append(withoutB, nodesWithout.Mean())
		fmt.Fprintf(summary, "n=%d: mean nodes with bound %.1f, without %.1f (%.1fx reduction)\n",
			n, nodesWith.Mean(), nodesWithout.Mean(), nodesWithout.Mean()/nodesWith.Mean())
	}
	chart := &plot.Chart{
		Title:  "E4: B&B nodes with vs without Theorem-2 pruning",
		XLabel: "n (items)",
		YLabel: "mean search nodes",
		Series: []plot.Series{
			{Name: "with bound", X: xs, Y: withB},
			{Name: "without bound", X: xs, Y: withoutB},
		},
	}
	return saveChart(cfg, "ablation_pruning", chart)
}

// runDelta measures how often the literal Figure-3 δ (tail coefficient)
// picks a plan whose true Eq.3 gain is suboptimal or negative, by viewing
// time (experiment E5).
func runDelta(cfg config, summary *strings.Builder) error {
	fmt.Fprintf(summary, "\n--- Ablation: literal Fig-3 δ vs Theorem-3 δ (E5) ---\n")
	r := rng.New(cfg.seed ^ 0xDE17A)
	instances := 2000
	if cfg.quick {
		instances = 300
	}
	var xs, subopt, negative, gap []float64
	for _, vMax := range []int{5, 10, 20, 40, 80} {
		nSub, nNeg := 0, 0
		var gapAcc stats.Accumulator
		for i := 0; i < instances; i++ {
			p := randProblem(r, 10, access.SkewyGen{}, vMax)
			paperPlan, _, err := core.SolveSKPPaper(p)
			if err != nil {
				return err
			}
			exactPlan, _, err := core.SolveSKP(p)
			if err != nil {
				return err
			}
			gPaper, err := core.Gain(p, paperPlan)
			if err != nil {
				return err
			}
			gExact, err := core.Gain(p, exactPlan)
			if err != nil {
				return err
			}
			if gPaper < gExact-1e-9 {
				nSub++
				gapAcc.Add(gExact - gPaper)
			}
			if gPaper < -1e-9 {
				nNeg++
			}
		}
		xs = append(xs, float64(vMax))
		subopt = append(subopt, 100*float64(nSub)/float64(instances))
		negative = append(negative, 100*float64(nNeg)/float64(instances))
		g := 0.0
		if gapAcc.N() > 0 {
			g = gapAcc.Mean()
		}
		gap = append(gap, g)
		fmt.Fprintf(summary, "v<=%d: literal δ suboptimal on %.1f%% of instances (mean gap %.3f), negative true gain on %.1f%%\n",
			vMax, subopt[len(subopt)-1], g, negative[len(negative)-1])
	}
	chart := &plot.Chart{
		Title:  "E5: literal Fig-3 δ pathology by viewing-time range",
		XLabel: "max viewing time",
		YLabel: "% of instances",
		Series: []plot.Series{
			{Name: "suboptimal plan", X: xs, Y: subopt},
			{Name: "negative true gain", X: xs, Y: negative},
		},
	}
	return saveChart(cfg, "ablation_delta", chart)
}

// runLookahead compares one-step SKP with the stretch-priced depth-2
// planner in the event-driven session where stretch really intrudes into
// the next viewing window (experiment E6).
func runLookahead(cfg config, summary *strings.Builder) error {
	fmt.Fprintf(summary, "\n--- Extension: depth-2 lookahead in the intrusion session (E6) ---\n")
	requests := cfg.requests
	if requests > 20000 {
		requests = 20000 // event-driven; keep the default run snappy
	}
	planners := []struct {
		planner sim.SessionPlanner
		opts    sim.SessionOptions
		label   string
	}{
		{sim.PlainPlanner{Policy: sim.NoPrefetch{}}, sim.SessionOptions{}, "no prefetch"},
		{sim.PlainPlanner{Policy: sim.KPPolicy{}}, sim.SessionOptions{}, "KP"},
		{sim.PlainPlanner{Policy: sim.SKPPolicy{}}, sim.SessionOptions{}, "SKP"},
		{sim.LookaheadPlanner{}, sim.SessionOptions{}, "SKP+lookahead"},
		{sim.Depth2Planner{}, sim.SessionOptions{}, "SKP+depth2-exact"},
		{sim.PlainPlanner{Policy: sim.SKPPolicy{}}, sim.SessionOptions{EffectiveViewing: true}, "SKP+effective-v"},
		{sim.Depth2Planner{}, sim.SessionOptions{EffectiveViewing: true}, "SKP+depth2+effective-v"},
	}
	// Use a tighter-viewing-time, skew-transition chain so that stretching
	// is actually attractive and its intrusion into the next window shows.
	r := rng.New(cfg.seed ^ 0x100CA)
	trace, err := sim.BuildMarkovTrace(r, access.MarkovConfig{
		States: 100, MinOut: 10, MaxOut: 20, MinViewing: 1, MaxViewing: 20, SkewAlpha: 12,
	}, 1, 30, requests)
	if err != nil {
		return err
	}
	var names []string
	var means, busy []float64
	for _, pl := range planners {
		res, err := sim.RunMarkovSession(trace, pl.planner, pl.opts)
		if err != nil {
			return err
		}
		names = append(names, pl.label)
		means = append(means, res.Access.Mean())
		busy = append(busy, res.NetworkBusy/float64(res.Requests))
		fmt.Fprintf(summary, "%-26s mean T = %.3f, network/request = %.2f\n",
			pl.label, res.Access.Mean(), res.NetworkBusy/float64(res.Requests))
	}
	xs := make([]float64, len(names))
	for i := range xs {
		xs[i] = float64(i)
	}
	chart := &plot.Chart{
		Title:  "E6: session access time under stretch intrusion (policy index)",
		XLabel: "policy index (see CSV/summary for names)",
		YLabel: "mean access time",
		Series: []plot.Series{
			{Name: "mean T", X: xs, Y: means},
			{Name: "network/request ÷ 10", X: xs, Y: scale(busy, 0.1)},
		},
	}
	return saveChart(cfg, "ablation_lookahead", chart)
}

func scale(xs []float64, f float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * f
	}
	return out
}

// runLambda sweeps the network-usage price λ and maps the access-time vs
// network-usage Pareto frontier (experiment E7, paper §6 future work).
func runLambda(cfg config, summary *strings.Builder) error {
	fmt.Fprintf(summary, "\n--- Extension: network-usage-aware prefetching (E7) ---\n")
	r := rng.New(cfg.seed ^ 0x1A3BDA)
	iters := cfg.iters
	if iters > 20000 {
		iters = 20000
	}
	src, err := workload.NewRandomSource(r, workload.Fig45Config(10, access.SkewyGen{}), iters)
	if err != nil {
		return err
	}
	rounds := workload.Collect(src)
	lambdas := []float64{0, 0.02, 0.05, 0.1, 0.2, 0.4, 0.8, 1.6}
	policies := make([]sim.Policy, 0, len(lambdas))
	for _, l := range lambdas {
		policies = append(policies, sim.CostAwarePolicy{Lambda: l})
	}
	results, err := sim.RunPrefetchOnly(rounds, policies, sim.PrefetchOnlyOptions{})
	if err != nil {
		return err
	}
	var ts, usage []float64
	for i, res := range results {
		ts = append(ts, res.Overall.Mean())
		usage = append(usage, res.Usage.Mean())
		fmt.Fprintf(summary, "λ=%-5.2f mean T = %.3f, prefetch network/round = %.2f, waste/round = %.2f\n",
			lambdas[i], res.Overall.Mean(), res.Usage.Mean(), res.Waste.Mean())
	}
	chart := &plot.Chart{
		Title:  "E7: access-time vs network-usage frontier (λ sweep)",
		XLabel: "prefetch network time per round",
		YLabel: "mean access time",
		Series: []plot.Series{{Name: "λ frontier", X: usage, Y: ts}},
	}
	return saveChart(cfg, "ablation_lambda", chart)
}
