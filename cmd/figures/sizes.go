package main

import (
	"fmt"
	"strings"

	"prefetch/internal/access"
	"prefetch/internal/core"
	"prefetch/internal/plot"
	"prefetch/internal/rng"
	"prefetch/internal/sim"
	"prefetch/internal/sweep"
)

// runSizes is experiment E9: the non-uniform item-size extension. Item
// sizes track retrieval times (unit-bandwidth link); the cache is byte-
// capacity. Compared: no prefetch, SKP with size-aware (value-per-byte)
// demand eviction, and SKP with size-blind (absolute-value) demand
// eviction. Prefetch admission always uses the size-aware Figure-6
// generalisation (core.ArbitrateSized).
func runSizes(cfg config, summary *strings.Builder) error {
	fmt.Fprintf(summary, "\n--- Extension: non-uniform item sizes (E9) ---\n")
	r := rng.New(cfg.seed ^ 0x512E5)
	requests := cfg.requests
	if requests > 20000 {
		requests = 20000
	}
	mcfg := access.Fig7MarkovConfig()
	mcfg.SkewAlpha = 8
	trace, err := sim.BuildMarkovTrace(r, mcfg, 1, 30, requests)
	if err != nil {
		return err
	}
	sizes := sim.BuildSizes(r, trace.Retrievals)
	var totalBytes int64
	for _, s := range sizes {
		totalBytes += s
	}
	planners := []sim.SizedPlanner{
		{Label: "no prefetch, size-aware", Solver: nil, Sub: core.SubDS, Ordering: sim.ByDensity},
		{Label: "no prefetch, size-blind", Solver: nil, Sub: core.SubDS, Ordering: sim.ByValue},
		{Label: "SKP, size-aware eviction", Solver: sim.SKPPolicy{}, Sub: core.SubDS, Ordering: sim.ByDensity},
		{Label: "SKP, size-blind eviction", Solver: sim.SKPPolicy{}, Sub: core.SubDS, Ordering: sim.ByValue},
	}
	fracs := []float64{0.1, 0.2, 0.35, 0.5, 0.7, 0.85, 1.0}

	chart := &plot.Chart{
		Title:  "E9: byte-capacity cache with non-uniform item sizes",
		XLabel: "cache capacity (fraction of corpus bytes)",
		YLabel: "mean access time",
	}
	type cell struct {
		planner sim.SizedPlanner
		frac    float64
	}
	var cells []cell
	for _, pl := range planners {
		for _, f := range fracs {
			cells = append(cells, cell{pl, f})
		}
	}
	means, err := sweep.Map(cells, func(c cell) (float64, error) {
		capBytes := int64(float64(totalBytes) * c.frac)
		if capBytes < 1 {
			capBytes = 1
		}
		res, err := sim.RunSizedPrefetchCache(trace, sizes, c.planner, capBytes)
		if err != nil {
			return 0, err
		}
		return res.Access.Mean(), nil
	})
	if err != nil {
		return err
	}
	for pi, pl := range planners {
		xs := make([]float64, len(fracs))
		ys := make([]float64, len(fracs))
		for fi, f := range fracs {
			xs[fi] = f
			ys[fi] = means[pi*len(fracs)+fi]
		}
		chart.Series = append(chart.Series, plot.Series{Name: pl.Label, X: xs, Y: ys})
		fmt.Fprintf(summary, "%-26s", pl.Label)
		for fi, f := range fracs {
			fmt.Fprintf(summary, " %.2f→%.3f", f, ys[fi])
		}
		fmt.Fprintln(summary)
	}
	return saveChart(cfg, "ablation_sizes", chart)
}
