package main

import (
	"fmt"
	"strings"

	"prefetch/internal/access"
	"prefetch/internal/core"
	"prefetch/internal/plot"
	"prefetch/internal/rng"
	"prefetch/internal/sim"
	"prefetch/internal/sweep"
)

// runFig7 regenerates Figure 7: access time per request against cache size
// for the five prefetch-cache policies over the 100-state Markov source,
// plus a skewed-transition variant (suffix "skew") where the gap between
// SKP and KP prefetch is visible (the paper does not specify the
// transition probabilities; normalised-uniform ones are nearly flat, and
// flat probabilities make SKP ≈ KP per the paper's own Fig. 5b).
func runFig7(cfg config, summary *strings.Builder) error {
	if err := runFig7Variant(cfg, summary, "fig7", access.Fig7MarkovConfig()); err != nil {
		return err
	}
	skewCfg := access.Fig7MarkovConfig()
	skewCfg.SkewAlpha = 12
	return runFig7Variant(cfg, summary, "fig7skew", skewCfg)
}

func runFig7Variant(cfg config, summary *strings.Builder, name string, mcfg access.MarkovConfig) error {
	fmt.Fprintf(summary, "\n--- Figure 7 (%s): access time per request vs cache size ---\n", name)
	r := rng.New(cfg.seed ^ 0x7777)
	trace, err := sim.BuildMarkovTrace(r, mcfg, 1, 30, cfg.requests)
	if err != nil {
		return err
	}
	planners := sim.Fig7Planners(core.DeltaTheorem3)

	step := cfg.cacheStep
	if step < 1 {
		step = 1
	}
	var sizes []int
	for s := 1; s <= 100; s += step {
		sizes = append(sizes, s)
	}
	if sizes[len(sizes)-1] != 100 {
		sizes = append(sizes, 100)
	}

	chart := &plot.Chart{
		Title:  fmt.Sprintf("%s: prefetch-cache policies (100-state Markov source)", name),
		XLabel: "cache size",
		YLabel: "access time per request",
	}
	// Each (planner, size) cell is independent: fan the sweep out over all
	// cores. The trace is shared read-only; every run owns its cache.
	type cell struct {
		planner sim.CachePlanner
		size    int
	}
	var cells []cell
	for _, pl := range planners {
		for _, size := range sizes {
			cells = append(cells, cell{pl, size})
		}
	}
	means, err := sweep.Map(cells, func(c cell) (float64, error) {
		res, err := sim.RunPrefetchCache(trace, c.planner, c.size)
		if err != nil {
			return 0, err
		}
		return res.Access.Mean(), nil
	})
	if err != nil {
		return err
	}
	curves := make(map[string][]float64, len(planners))
	for pi, pl := range planners {
		xs := make([]float64, len(sizes))
		ys := make([]float64, len(sizes))
		for si, size := range sizes {
			xs[si] = float64(size)
			ys[si] = means[pi*len(sizes)+si]
		}
		curves[pl.Label] = ys
		chart.Series = append(chart.Series, plot.Series{Name: pl.Label, X: xs, Y: ys})
	}
	if err := saveChart(cfg, name, chart); err != nil {
		return err
	}

	// Report at the run sizes nearest to the paper-interesting checkpoints.
	nearest := func(target int) int {
		best := 0
		for i, s := range sizes {
			if abs(s-target) < abs(sizes[best]-target) {
				best = i
			}
		}
		return best
	}
	var midIdx int
	for _, target := range []int{10, 30, 60, 100} {
		idx := nearest(target)
		if target == 30 {
			midIdx = idx
		}
		fmt.Fprintf(summary, "%s @cache=%d: ", name, sizes[idx])
		for _, pl := range planners {
			fmt.Fprintf(summary, "%s=%.3f ", pl.Label, curves[pl.Label][idx])
		}
		fmt.Fprintln(summary)
	}
	// Ordering check at a mid cache size: the paper's ranking is
	// SKP+Pr+DS <= SKP+Pr+LFU <= SKP+Pr <= KP+Pr <= No+Pr.
	at := func(label string) float64 { return curves[label][midIdx] }
	ordered := at("SKP+Pr+DS") <= at("SKP+Pr+LFU")+0.3 &&
		at("SKP+Pr+LFU") <= at("SKP+Pr")+0.3 &&
		at("SKP+Pr") <= at("KP+Pr")+0.3 &&
		at("KP+Pr") <= at("No+Pr")+0.3
	fmt.Fprintf(summary, "%s ordering at cache=%d (DS<=LFU<=Pr<=KP<=No, slack 0.3): %v\n", name, sizes[midIdx], ordered)
	return nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
