// Command figures regenerates every figure of the paper's evaluation plus
// this reproduction's ablation experiments, writing CSV, SVG and ASCII
// renderings along with a plain-text summary of the key numbers.
//
// Usage:
//
//	figures [-fig all|4|5|7|pruning|delta|lookahead|lambda|sizes] \
//	        [-out figures] [-seed 42] [-iters 50000] [-requests 50000] \
//	        [-cachestep 3] [-quick]
//
// The experiment index lives in DESIGN.md; measured-vs-paper notes live in
// EXPERIMENTS.md. All runs are deterministic in -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"prefetch/internal/plot"
)

type config struct {
	out       string
	fig       string
	seed      uint64
	iters     int
	requests  int
	cacheStep int
	quick     bool
}

func main() {
	var cfg config
	var seed uint64
	flag.StringVar(&cfg.out, "out", "figures", "output directory")
	flag.StringVar(&cfg.fig, "fig", "all", "figure to regenerate: all|4|5|7|pruning|delta|lookahead|lambda|sizes")
	flag.Uint64Var(&seed, "seed", 42, "random seed")
	flag.IntVar(&cfg.iters, "iters", 50000, "iterations for the prefetch-only simulations (Figs 4, 5)")
	flag.IntVar(&cfg.requests, "requests", 50000, "requests per point for the prefetch-cache simulation (Fig 7)")
	flag.IntVar(&cfg.cacheStep, "cachestep", 3, "cache-size step for Fig 7 (1 reproduces all 100 points)")
	flag.BoolVar(&cfg.quick, "quick", false, "small, fast run (iters=5000, requests=4000, cachestep=10)")
	flag.Parse()
	cfg.seed = seed
	if cfg.quick {
		cfg.iters = 5000
		cfg.requests = 4000
		cfg.cacheStep = 10
	}

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	if err := os.MkdirAll(cfg.out, 0o755); err != nil {
		return err
	}
	var summary strings.Builder
	fmt.Fprintf(&summary, "figures run: seed=%d iters=%d requests=%d cachestep=%d (%s)\n",
		cfg.seed, cfg.iters, cfg.requests, cfg.cacheStep, time.Now().Format(time.RFC3339))

	type job struct {
		name string
		fn   func(config, *strings.Builder) error
	}
	jobs := []job{
		{"4", runFig4},
		{"5", runFig5},
		{"7", runFig7},
		{"pruning", runPruning},
		{"delta", runDelta},
		{"lookahead", runLookahead},
		{"lambda", runLambda},
		{"sizes", runSizes},
	}
	ran := false
	for _, j := range jobs {
		if cfg.fig != "all" && cfg.fig != j.name {
			continue
		}
		ran = true
		start := time.Now()
		fmt.Fprintf(os.Stderr, "== figure %s ==\n", j.name)
		if err := j.fn(cfg, &summary); err != nil {
			return fmt.Errorf("figure %s: %w", j.name, err)
		}
		fmt.Fprintf(os.Stderr, "   done in %v\n", time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		return fmt.Errorf("unknown figure %q", cfg.fig)
	}
	path := filepath.Join(cfg.out, "summary.txt")
	if err := os.WriteFile(path, []byte(summary.String()), 0o644); err != nil {
		return err
	}
	fmt.Print(summary.String())
	return nil
}

// saveChart writes a chart in all three formats under out/name.{csv,svg,txt}.
func saveChart(cfg config, name string, c *plot.Chart) error {
	csv, err := plot.CSV(c)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(cfg.out, name+".csv"), []byte(csv), 0o644); err != nil {
		return err
	}
	svg, err := plot.SVG(c, 640, 420)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(cfg.out, name+".svg"), []byte(svg), 0o644); err != nil {
		return err
	}
	ascii, err := plot.ASCII(c, 72, 20)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(cfg.out, name+".txt"), []byte(ascii), 0o644)
}
